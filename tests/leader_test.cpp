// The §7 unknown-diameter LEADERELECT protocol and consensus-via-leader:
// schedule algebra, correctness across the adversary zoo, agreement,
// lock/unlock behaviour, and the flooding-round complexity shape.
#include <gtest/gtest.h>

#include <memory>
#include <map>
#include <set>

#include "adversary/dynamic_adversaries.h"
#include "adversary/static_adversaries.h"
#include "net/diameter.h"
#include "protocols/consensus_via_leader.h"
#include "protocols/leader_unknown_d.h"
#include "sim/engine.h"

namespace dynet::proto {
namespace {

using sim::NodeId;
using sim::Round;

LeaderConfig baseConfig(NodeId n, double estimate_skew = 1.0) {
  LeaderConfig config;
  config.n_estimate = n * estimate_skew;
  config.c = 0.25;
  config.k = 64;
  return config;
}

std::unique_ptr<sim::Adversary> makeAdversary(const std::string& name, NodeId n,
                                              std::uint64_t seed) {
  if (name == "static_path") {
    return std::make_unique<adv::StaticAdversary>(net::makePath(n));
  }
  if (name == "static_star") {
    return std::make_unique<adv::StaticAdversary>(net::makeStar(n));
  }
  if (name == "static_ring") {
    return std::make_unique<adv::StaticAdversary>(net::makeRing(n));
  }
  if (name == "random_tree") {
    return std::make_unique<adv::RandomTreeAdversary>(n, seed);
  }
  if (name == "rotating_star") {
    return std::make_unique<adv::RotatingStarAdversary>(n);
  }
  if (name == "shuffle_path") {
    return std::make_unique<adv::ShufflePathAdversary>(n, seed);
  }
  return std::make_unique<adv::IntervalAdversary>(n, 8, seed);
}

TEST(LeaderSchedule, StagesPartitionPhases) {
  LeaderConfig config = baseConfig(100);
  LeaderSchedule schedule(config);
  // Walk 3 full phases round by round: stages must appear in order A,B,C,D
  // with the advertised lengths, and offsets must be contiguous.
  Round r = 1;
  for (int phase = 0; phase < 3; ++phase) {
    EXPECT_EQ(schedule.phaseStart(phase), r);
    const Round lens[4] = {schedule.stageALen(phase), schedule.stageBLen(phase),
                           schedule.stageALen(phase), schedule.stageBLen(phase)};
    for (int stage = 0; stage < 4; ++stage) {
      for (Round off = 0; off < lens[stage]; ++off, ++r) {
        const auto pos = schedule.locate(r);
        ASSERT_EQ(pos.phase, phase) << "r=" << r;
        ASSERT_EQ(pos.stage, stage) << "r=" << r;
        ASSERT_EQ(pos.offset, off) << "r=" << r;
        ASSERT_EQ(pos.stage_len, lens[stage]) << "r=" << r;
      }
    }
  }
}

TEST(LeaderSchedule, LengthsDoubleWithPhase) {
  LeaderSchedule schedule(baseConfig(100));
  // D' doubles each phase; stage lengths are affine in D'.
  const Round a0 = schedule.stageALen(0);
  const Round a3 = schedule.stageALen(3);
  EXPECT_GT(a3, 4 * (a0 - 8));
  EXPECT_GT(schedule.stageBLen(2), schedule.stageBLen(1));
}

TEST(LeaderSchedule, DerivesKFromC) {
  LeaderConfig config = baseConfig(100);
  config.k = 0;
  config.c = 0.25;
  LeaderSchedule schedule(config);
  EXPECT_EQ(schedule.k(), coordCountFor(0.25));
}

struct LeaderOutcome {
  bool all_done = false;
  Round rounds = 0;
  std::uint64_t leader = 0;
  bool agreement = true;
  int declared_phase = -1;
};

LeaderOutcome runLeader(const std::string& adv_name, NodeId n,
                        const LeaderConfig& config, std::uint64_t seed,
                        Round max_rounds = 3'000'000) {
  LeaderElectFactory factory(config, util::hashCombine(seed, 0xabcd));
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig engine_config;
  engine_config.max_rounds = max_rounds;
  sim::Engine engine(std::move(ps), makeAdversary(adv_name, n, seed),
                     engine_config, seed);
  const auto result = engine.run();
  LeaderOutcome outcome;
  outcome.all_done = result.all_done;
  outcome.rounds = result.all_done_round;
  if (result.all_done) {
    outcome.leader = engine.process(0).output();
    for (NodeId v = 0; v < n; ++v) {
      outcome.agreement =
          outcome.agreement && engine.process(v).output() == outcome.leader;
      const auto* lp =
          dynamic_cast<const LeaderElectProcess*>(&engine.process(v));
      if (lp != nullptr && lp->declaredInPhase() >= 0) {
        outcome.declared_phase = lp->declaredInPhase();
      }
    }
  }
  return outcome;
}

class LeaderZooSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(LeaderZooSweep, ElectsUniqueLeaderWithAgreement) {
  const auto [adv_name, n] = GetParam();
  const LeaderOutcome outcome =
      runLeader(adv_name, static_cast<NodeId>(n), baseConfig(n), 2024);
  ASSERT_TRUE(outcome.all_done) << adv_name << " n=" << n;
  EXPECT_TRUE(outcome.agreement) << adv_name << " n=" << n;
  // The elected leader is whp the max id (key n); any unique agreed leader
  // satisfies the problem, but on these adversaries the max always wins.
  EXPECT_EQ(outcome.leader, static_cast<std::uint64_t>(n)) << adv_name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, LeaderZooSweep,
    ::testing::Combine(::testing::Values("static_star", "static_ring",
                                         "random_tree", "rotating_star",
                                         "shuffle_path", "interval"),
                       ::testing::Values(16, 48)));

TEST(LeaderUnknownD, StaticPathLargeDiameter) {
  const NodeId n = 64;
  const LeaderOutcome outcome = runLeader("static_path", n, baseConfig(n), 7);
  ASSERT_TRUE(outcome.all_done);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_EQ(outcome.leader, static_cast<std::uint64_t>(n));
  // Declaration cannot happen before D' reaches ~D: with D = 63 the
  // declaring phase must be at least 4 (D' = 16 covers nothing near 63/2).
  EXPECT_GE(outcome.declared_phase, 3);
}

TEST(LeaderUnknownD, EstimateSkewWithinPromiseStillWorks) {
  const NodeId n = 48;
  for (const double skew : {0.78, 1.0, 1.25}) {
    // c = 0.25: promise allows |N'-N|/N <= 1/12 — use modest skews within
    // a looser c to exercise both sides.
    LeaderConfig config = baseConfig(n, skew);
    config.c = 0.05;
    config.k = 96;
    const LeaderOutcome outcome = runLeader("random_tree", n, config, 31);
    ASSERT_TRUE(outcome.all_done) << "skew=" << skew;
    EXPECT_TRUE(outcome.agreement) << "skew=" << skew;
    EXPECT_EQ(outcome.leader, static_cast<std::uint64_t>(n)) << "skew=" << skew;
  }
}

TEST(LeaderUnknownD, ManySeedsNoDoubleLeader) {
  // Agreement/uniqueness across seeds (Monte Carlo error must be rare; we
  // demand zero failures in this batch).
  const NodeId n = 24;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const LeaderOutcome outcome = runLeader("random_tree", n, baseConfig(n), seed);
    ASSERT_TRUE(outcome.all_done) << "seed=" << seed;
    EXPECT_TRUE(outcome.agreement) << "seed=" << seed;
  }
}

TEST(LeaderUnknownD, SingleNodeElectsItself) {
  LeaderConfig config = baseConfig(1);
  LeaderElectFactory factory(config, 5);
  std::vector<std::unique_ptr<sim::Process>> ps;
  ps.push_back(factory.create(0, 1));
  sim::EngineConfig engine_config;
  engine_config.max_rounds = 100000;
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::StaticAdversary>(
                         std::make_shared<net::Graph>(1, std::vector<net::Edge>{})),
                     engine_config, 5);
  const auto result = engine.run();
  ASSERT_TRUE(result.all_done);
  EXPECT_EQ(engine.process(0).output(), 1u);
}

TEST(LeaderUnknownD, FloodingRoundComplexityIsPolylog) {
  // The headline upper-bound shape: rounds / D stays polylogarithmic in N.
  // The absolute constant is k-dominated (k = 64 counting coordinates), so
  // the honest assertions are (a) a polylog envelope and (b) strongly
  // sublinear growth in N — quadrupling N must not come close to
  // quadrupling the flooding rounds.  (The crossover against the Θ(N log N)
  // pessimistic baseline is charted by bench_gap.)
  // Rotating star: realized D <= 2.
  std::map<NodeId, double> flooding_rounds;
  for (const NodeId n : {16, 64, 256}) {
    const LeaderOutcome outcome = runLeader("rotating_star", n, baseConfig(n), 5);
    ASSERT_TRUE(outcome.all_done) << n;
    flooding_rounds[n] = outcome.rounds / 2.0;
    const double log_n = std::log2(static_cast<double>(n));
    EXPECT_LT(flooding_rounds[n], 700 * log_n * log_n) << "n=" << n;
  }
  EXPECT_LT(flooding_rounds[64], 4.0 * flooding_rounds[16] * 0.9);
  EXPECT_LT(flooding_rounds[256], 4.0 * flooding_rounds[64] * 0.9);
}

TEST(ConsensusViaLeader, DecidesLeadersInput) {
  const NodeId n = 32;
  std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    inputs[static_cast<std::size_t>(v)] = (v % 3 == 0) ? 1 : 0;
  }
  ConsensusViaLeaderFactory factory(baseConfig(n), 77, inputs);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig engine_config;
  engine_config.max_rounds = 3'000'000;
  sim::Engine engine(std::move(ps), makeAdversary("random_tree", n, 12),
                     engine_config, 12);
  const auto result = engine.run();
  ASSERT_TRUE(result.all_done);
  // Whp the max id (node n-1) leads; its input is (n-1) % 3 == 0 ? 1 : 0.
  const std::uint64_t decided = engine.process(0).output();
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(engine.process(v).output(), decided);  // agreement
  }
  // Validity: the decision is some node's input.
  std::set<std::uint64_t> input_set(inputs.begin(), inputs.end());
  EXPECT_TRUE(input_set.count(decided) == 1);
}

TEST(ConsensusViaLeader, UnanimousInputsDecideThatValue) {
  const NodeId n = 16;
  for (const std::uint64_t value : {0ull, 1ull}) {
    std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n), value);
    ConsensusViaLeaderFactory factory(baseConfig(n), 3, inputs);
    std::vector<std::unique_ptr<sim::Process>> ps;
    for (NodeId v = 0; v < n; ++v) {
      ps.push_back(factory.create(v, n));
    }
    sim::EngineConfig engine_config;
    engine_config.max_rounds = 2'000'000;
    sim::Engine engine(std::move(ps), makeAdversary("rotating_star", n, 4),
                       engine_config, 4);
    const auto result = engine.run();
    ASSERT_TRUE(result.all_done);
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(engine.process(v).output(), value);
    }
  }
}

TEST(LeaderElectFactory, RequiresInputsWhenCarryingValue) {
  LeaderConfig config = baseConfig(4);
  config.carry_value = true;
  LeaderElectFactory factory(config, 1, {});
  EXPECT_THROW(factory.create(0, 4), util::CheckError);
}

}  // namespace
}  // namespace dynet::proto
