// Boundary and negative-path tests: what happens at the edges of the
// guarantees (invalid N' promises, exhausted budgets, offsets, singletons,
// convergence-to-identical-state properties).
#include <gtest/gtest.h>

#include <memory>

#include "adversary/dynamic_adversaries.h"
#include "adversary/static_adversaries.h"
#include "lowerbound/gamma.h"
#include "protocols/counting.h"
#include "protocols/leader_unknown_d.h"
#include "protocols/majority.h"
#include "sim/engine.h"

namespace dynet {
namespace {

using sim::NodeId;
using sim::Round;

TEST(BitWidth, DegenerateInputs) {
  EXPECT_EQ(util::bitWidthFor(0), 1);
  EXPECT_EQ(util::bitWidthFor(1), 1);
  // Never exceeds 63 even for huge inputs.
  EXPECT_LE(util::bitWidthFor(~std::uint64_t{0}), 63);
}

TEST(MajorityPromise, InvalidEstimateStallsElection) {
  // N' = 3N grossly violates the promise: the majority threshold exceeds N,
  // so no candidate can ever claim a majority and no leader is declared —
  // the protocol fails SAFE (stalls) rather than electing wrongly.
  const NodeId n = 24;
  proto::LeaderConfig config;
  config.n_estimate = 3.0 * n;
  config.c = 0.25;
  config.k = 64;
  proto::LeaderElectFactory factory(config, 9);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig engine_config;
  engine_config.max_rounds = 60'000;  // several phases' worth
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::RandomTreeAdversary>(n, 9),
                     engine_config, 9);
  const auto result = engine.run();
  EXPECT_FALSE(result.all_done);
  for (NodeId v = 0; v < n; ++v) {
    const auto* lp =
        dynamic_cast<const proto::LeaderElectProcess*>(&engine.process(v));
    ASSERT_NE(lp, nullptr);
    EXPECT_EQ(lp->leaderKey(), 0u) << v;
  }
}

TEST(MajorityPromise, ThresholdExceedsNForGrossOverestimates) {
  // The safety above in one line: τ(3N, c) > N.
  const double n = 100;
  EXPECT_GT(proto::majorityThreshold(3 * n, 0.25), n);
  EXPECT_FALSE(proto::validEstimate(3 * n, n, 0.25));
}

TEST(Counting, AllNodesConvergeToNearIdenticalEstimates) {
  // After enough rounds every node's min-vector equals the global minima up
  // to the 16-bit wire quantization (a node keeps its own contributions at
  // full precision; everyone else holds the quantized copy), so estimates
  // agree within the quantizer's ~0.4% relative error.
  const NodeId n = 32;
  const int k = 64;
  const Round rounds = proto::countingRounds(k, 8, n, 4);
  proto::CountingFactory factory(k, rounds, 3);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = rounds + 1;
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::RandomTreeAdversary>(n, 3), config,
                     3);
  engine.run();
  const auto* first =
      dynamic_cast<const proto::CountingProcess*>(&engine.process(0));
  ASSERT_NE(first, nullptr);
  for (NodeId v = 1; v < n; ++v) {
    const auto* p =
        dynamic_cast<const proto::CountingProcess*>(&engine.process(v));
    ASSERT_NE(p, nullptr);
    EXPECT_NEAR(p->estimate(), first->estimate(), 0.01 * first->estimate())
        << v;
  }
  EXPECT_NEAR(first->estimate(), n, 0.3 * n);
}

TEST(GammaNet, OffsetShiftsAllIds) {
  util::Rng rng(2);
  const cc::Instance inst = cc::randomInstance(2, 5, rng);
  const lb::GammaNet at0(inst, 0);
  const lb::GammaNet at100(inst, 100);
  EXPECT_EQ(at100.a(), 100);
  EXPECT_EQ(at100.b(), 101);
  EXPECT_EQ(at100.top(1, 1) - at0.top(1, 1), 100);
  EXPECT_EQ(at100.numNodes(), at0.numNodes());
  // Edges generated at the offset stay within [offset, offset+numNodes).
  std::vector<net::Edge> edges;
  at100.appendPartyEdges(lb::Party::kAlice, 1, edges);
  for (const auto& e : edges) {
    EXPECT_GE(e.a, 100);
    EXPECT_LT(e.a, 100 + at100.numNodes());
    EXPECT_GE(e.b, 100);
    EXPECT_LT(e.b, 100 + at100.numNodes());
  }
}

TEST(Engine, MaxRoundsExhaustionReported) {
  // A protocol that never finishes: run() stops at max_rounds with
  // all_done = false and rounds_executed = max_rounds.
  proto::LeaderConfig config;
  config.n_estimate = 8;
  config.c = 0.25;
  config.k = 16;
  proto::LeaderElectFactory factory(config, 1);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < 8; ++v) {
    ps.push_back(factory.create(v, 8));
  }
  sim::EngineConfig engine_config;
  engine_config.max_rounds = 5;  // far too few
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::StaticAdversary>(net::makeRing(8)),
                     engine_config, 1);
  const auto result = engine.run();
  EXPECT_FALSE(result.all_done);
  EXPECT_EQ(result.rounds_executed, 5);
  EXPECT_FALSE(engine.step());  // exhausted: step refuses
}

TEST(MessageCapacity, FullWidthMessageRoundTrips) {
  sim::MessageBuilder builder;
  for (int w = 0; w < 4; ++w) {
    builder.put(0xa5a5a5a5a5a5a5a5ULL, 64);
  }
  const sim::Message msg = builder.build();
  EXPECT_EQ(msg.bitSize(), 256);
  sim::MessageReader reader(msg);
  for (int w = 0; w < 4; ++w) {
    EXPECT_EQ(reader.get(64), 0xa5a5a5a5a5a5a5a5ULL);
  }
  // One more bit overflows the structural capacity.
  sim::MessageBuilder overfull;
  for (int w = 0; w < 4; ++w) {
    overfull.put(0, 64);
  }
  EXPECT_THROW(overfull.put(1, 1), util::CheckError);
}

TEST(CoinStream, BelowIsInRangeAtBoundaries) {
  util::CoinStream coins(1, 2, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(coins.below(1), 0u);
  }
  util::CoinStream coins2(1, 2, 4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(coins2.below(7), 7u);
  }
}

TEST(Graph, ComponentCountsAndIsolation) {
  net::Graph g(6, {{0, 1}, {2, 3}});
  EXPECT_EQ(g.componentCount(), 4);  // {0,1}, {2,3}, {4}, {5}
  EXPECT_TRUE(g.neighbors(4).empty());
}

}  // namespace
}  // namespace dynet
