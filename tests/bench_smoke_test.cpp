// Smoke tests for the benchmark harness binaries: every bench must run to
// completion (exit 0) in its quick configuration.  This keeps the
// experiment suite itself under CI discipline — a bench that crashes or
// trips an internal [FAIL] check fails here, not at paper-reproduction
// time.
//
// The bench directory is injected by CMake as DYNET_BENCH_DIR.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

namespace {

std::string benchPath(const std::string& name) {
  return std::string(DYNET_BENCH_DIR) + "/" + name;
}

int runQuiet(const std::string& command) {
  return std::system((command + " > /dev/null 2>&1").c_str());
}

class BenchSmoke : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchSmoke, RunsCleanInQuickMode) {
  const std::string binary = benchPath(GetParam());
  if (!std::filesystem::exists(binary)) {
    GTEST_SKIP() << binary << " not built";
  }
  // Every bench supports --quick (see bench/bench_common.h); a non-zero
  // exit here means the bench crashed or broke the --quick contract.
  EXPECT_EQ(runQuiet(binary + " --quick"), 0) << binary;
}

// bench_sim_perf (google-benchmark) and the heavier sweeps are exercised
// by the top-level bench run; here we cover the fast table generators.
INSTANTIATE_TEST_SUITE_P(Quick, BenchSmoke,
                         ::testing::Values("bench_fig1_gamma",
                                           "bench_fig2_fig3_lambda",
                                           "bench_cflood_lower",
                                           "bench_consensus_lower",
                                           "bench_disjcp",
                                           "bench_ablation_cascade",
                                           "bench_dual_graph",
                                           "bench_churn",
                                           "bench_faults"));

}  // namespace
