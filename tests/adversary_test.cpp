// Adversary zoo invariants: connectivity every round, determinism per
// (seed, round), and the adaptive choke's sender/receiver separation.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/dynamic_adversaries.h"
#include "adversary/static_adversaries.h"
#include "net/diameter.h"

namespace dynet::adv {
namespace {

using sim::Action;
using sim::NodeId;
using sim::Round;

std::vector<Action> allReceiving(NodeId n) {
  return std::vector<Action>(static_cast<std::size_t>(n));
}

class ZooConnectivity
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {
 public:
  std::unique_ptr<sim::Adversary> make(NodeId n) const {
    const std::string name = std::get<0>(GetParam());
    if (name == "random_tree") {
      return std::make_unique<RandomTreeAdversary>(n, 42);
    }
    if (name == "rotating_star") {
      return std::make_unique<RotatingStarAdversary>(n);
    }
    if (name == "shuffle_path") {
      return std::make_unique<ShufflePathAdversary>(n, 42);
    }
    if (name == "interval") {
      return std::make_unique<IntervalAdversary>(n, 5, 42);
    }
    return std::make_unique<SenderChokeAdversary>(n);
  }
};

TEST_P(ZooConnectivity, ConnectedEveryRound) {
  const auto n = static_cast<NodeId>(std::get<1>(GetParam()));
  auto adv = make(n);
  const auto actions = allReceiving(n);
  for (Round r = 1; r <= 40; ++r) {
    auto g = adv->topology(r, {actions});
    ASSERT_TRUE(g->connected()) << "round " << r;
    ASSERT_EQ(g->numNodes(), n);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooConnectivity,
    ::testing::Combine(::testing::Values("random_tree", "rotating_star",
                                         "shuffle_path", "interval",
                                         "sender_choke"),
                       ::testing::Values(2, 3, 17, 64)));

TEST(RandomTree, DeterministicPerRound) {
  RandomTreeAdversary a(20, 7);
  RandomTreeAdversary b(20, 7);
  const auto actions = allReceiving(20);
  for (Round r = 1; r <= 10; ++r) {
    auto ga = a.topology(r, {actions});
    auto gb = b.topology(r, {actions});
    ASSERT_EQ(ga->edges().size(), gb->edges().size());
    for (std::size_t i = 0; i < ga->edges().size(); ++i) {
      EXPECT_EQ(ga->edges()[i], gb->edges()[i]);
    }
  }
}

TEST(RandomTree, ChangesAcrossRounds) {
  RandomTreeAdversary a(20, 7);
  const auto actions = allReceiving(20);
  auto g1 = a.topology(1, {actions});
  auto g2 = a.topology(2, {actions});
  bool same = g1->edges().size() == g2->edges().size();
  if (same) {
    for (std::size_t i = 0; i < g1->edges().size(); ++i) {
      same = same && g1->edges()[i] == g2->edges()[i];
    }
  }
  EXPECT_FALSE(same);
}

TEST(Interval, StableWithinEpoch) {
  IntervalAdversary a(16, 4, 3);
  const auto actions = allReceiving(16);
  auto g1 = a.topology(1, {actions});
  auto g4 = a.topology(4, {actions});
  auto g5 = a.topology(5, {actions});
  EXPECT_EQ(g1.get(), g4.get());
  EXPECT_NE(g1.get(), g5.get());
}

TEST(SenderChoke, SingleCrossingEdge) {
  const NodeId n = 10;
  SenderChokeAdversary adv(n);
  std::vector<Action> actions(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; v += 2) {
    actions[static_cast<std::size_t>(v)].send = true;  // evens send
  }
  auto g = adv.topology(1, {actions});
  int crossing = 0;
  for (const auto& e : g->edges()) {
    const bool sa = actions[static_cast<std::size_t>(e.a)].send;
    const bool sb = actions[static_cast<std::size_t>(e.b)].send;
    if (sa != sb) {
      ++crossing;
    }
  }
  EXPECT_EQ(crossing, 1);
  EXPECT_TRUE(g->connected());
}

TEST(SenderChoke, AllSendersStillConnected) {
  const NodeId n = 6;
  SenderChokeAdversary adv(n);
  std::vector<Action> actions(static_cast<std::size_t>(n));
  for (auto& a : actions) {
    a.send = true;
  }
  auto g = adv.topology(1, {actions});
  EXPECT_TRUE(g->connected());
}

TEST(RotatingStar, CausalDiameterIsThetaN) {
  // The rotating star is the canonical "small per-round diameter, large
  // dynamic diameter" example: influence crawls along the center schedule.
  const NodeId n = 12;
  RotatingStarAdversary adv(n);
  const auto actions = allReceiving(n);
  net::TopologySeq topo;
  for (Round r = 1; r <= 3 * n; ++r) {
    topo.push_back(adv.topology(r, {actions}));
  }
  const int ecc = net::allSourcesEccentricity(topo, 0);
  ASSERT_GT(ecc, 0);
  EXPECT_GE(ecc, n - 1);
  EXPECT_LE(ecc, n + 1);
}

TEST(AnchoredStar, ConstantCausalDiameterUnderChurn) {
  const NodeId n = 12;
  AnchoredStarAdversary adv(n, 3);
  const auto actions = allReceiving(n);
  net::TopologySeq topo;
  for (Round r = 1; r <= 10; ++r) {
    topo.push_back(adv.topology(r, {actions}));
    ASSERT_TRUE(topo.back()->connected());
  }
  EXPECT_EQ(net::allSourcesEccentricity(topo, 0), 2);
}

TEST(AnchoredStar, TopologyChurns) {
  AnchoredStarAdversary adv(16, 3);
  const auto actions = allReceiving(16);
  auto g1 = adv.topology(1, {actions});
  auto g2 = adv.topology(2, {actions});
  bool same = g1->numEdges() == g2->numEdges();
  if (same) {
    for (std::size_t i = 0; i < g1->edges().size(); ++i) {
      same = same && g1->edges()[i] == g2->edges()[i];
    }
  }
  EXPECT_FALSE(same);
}

TEST(ShufflePath, HighDiameterShape) {
  ShufflePathAdversary adv(32, 11);
  const auto actions = allReceiving(32);
  net::TopologySeq topo;
  for (Round r = 1; r <= 64; ++r) {
    topo.push_back(adv.topology(r, {actions}));
  }
  // Fresh random permutations mix fast; diameter is far below the static
  // path's 31 but still at least a few rounds.
  const int d = net::allSourcesEccentricity(topo, 0);
  EXPECT_GT(d, 1);
  EXPECT_LT(d, 31);
}

TEST(RandomAttachTree, IsTree) {
  util::Rng rng(5);
  for (const NodeId n : {1, 2, 10, 100}) {
    auto g = randomAttachTree(n, rng);
    EXPECT_EQ(g->numEdges(), static_cast<std::size_t>(n - 1));
    EXPECT_TRUE(g->connected());
  }
}

}  // namespace
}  // namespace dynet::adv
