// Differential fuzz over the engine's dual hot paths.
//
// The arena delivery path, the incremental topology cache (PR: arena hot
// path + topology deltas) and the structure-of-arrays state store (PR: SoA
// state + many-worlds lanes) are required to be BYTE-IDENTICAL to the
// legacy engine: same RunResult fields, same per-node state digests, same
// serialized traces, same metrics.json — modulo the reserved metric
// prefixes (`topology/`, `arena/`, `soa/`) that report how the work was
// done rather than what the protocol did.
//
// This test samples random (adversary, protocol, fault-plan) configs from
// a fixed master seed and runs each through all eight flag combinations of
// {soa_state, arena_delivery, topology_deltas}, asserting every
// combination matches the legacy (false, false, false) artifacts exactly.
//
// Budget: the default config count keeps the test inside the tier-1 ctest
// `--quick` budget (a few seconds).  Set DYNET_FUZZ_CONFIGS=<count> to
// fuzz harder (e.g. 500 configs overnight); the sampled stream is stable,
// so a failure reproduces from its printed config index alone.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/churn_adversaries.h"
#include "adversary/dynamic_adversaries.h"
#include "adversary/static_adversaries.h"
#include "adversary/trace_adversary.h"
#include "dataset/trace.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "lowerbound/distance_lb.h"
#include "net/graph.h"
#include "obs/sink.h"
#include "protocols/diameter_approx.h"
#include "protocols/distance_bfs.h"
#include "protocols/flood.h"
#include "protocols/max_flood.h"
#include "protocols/oracles.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "util/env.h"
#include "util/rng.h"

namespace dynet::sim {
namespace {

struct FuzzConfig {
  NodeId n = 0;
  Round rounds = 0;
  int adversary = 0;       // index into the zoo below
  // 0 flood-det, 1 flood-rand, 2 max_flood, 3 babbler, 4 diam_exact,
  // 5 diam_2approx, 6 diam_32approx (4+ run under EngineConfig::duplex).
  int protocol = 0;
  std::uint64_t adv_seed = 0;
  std::uint64_t run_seed = 0;
  bool with_sink = false;
  bool faulty = false;
  faults::FaultConfig fc;
};

constexpr int kAdversaryKinds = 12;

/// bk_gadget antenna length for a config (also used by the min-n clamp in
/// sampleConfig, so it must be a pure function of adv_seed).
int bkStretch(const FuzzConfig& c) {
  return static_cast<int>(c.adv_seed % 3);
}

std::unique_ptr<Adversary> makeAdversary(const FuzzConfig& c) {
  switch (c.adversary) {
    case 0:
      return std::make_unique<adv::StaticAdversary>(net::makePath(c.n));
    case 1:
      return std::make_unique<adv::StaticAdversary>(net::makeStar(c.n));
    case 2:
      return std::make_unique<adv::RandomTreeAdversary>(c.n, c.adv_seed);
    case 3:
      return std::make_unique<adv::RotatingStarAdversary>(c.n);
    case 4:
      return std::make_unique<adv::AnchoredStarAdversary>(c.n, c.adv_seed);
    case 5:
      return std::make_unique<adv::ShufflePathAdversary>(c.n, c.adv_seed);
    case 6:
      return std::make_unique<adv::IntervalAdversary>(c.n, 6, c.adv_seed);
    case 7:
      return std::make_unique<adv::EdgeChurnAdversary>(
          c.n, 1 + static_cast<int>(c.adv_seed % 4), c.adv_seed);
    case 8:
      return std::make_unique<adv::RandomGraphAdversary>(
          c.n, 0.2 + 0.1 * static_cast<double>(c.adv_seed % 5), c.adv_seed);
    case 10: {
      const lb::AchBitGadget gadget(c.n, /*width=*/0, c.adv_seed,
                                    /*intersect=*/c.adv_seed % 2 == 0);
      return std::make_unique<adv::StaticAdversary>(gadget.graph());
    }
    case 11: {
      const lb::BkApproxGadget gadget(c.n, /*width=*/0, bkStretch(c),
                                      c.adv_seed,
                                      /*orthogonal=*/(c.adv_seed / 2) % 2 == 0);
      return std::make_unique<adv::StaticAdversary>(gadget.graph());
    }
    default: {
      // Dataset replay: a synthetic trace deliberately SHORTER than the run
      // (c.rounds/3) so every end policy wraps/clamps/mirrors mid-run, with
      // the policy and seeded round-offset drawn from adv_seed.  This pulls
      // the whole dataset→TraceAdversary delta pipeline into the eight-combo
      // flag matrix.
      const sim::Round trace_rounds = std::max<sim::Round>(4, c.rounds / 3);
      auto trace = std::make_shared<const dataset::CompiledTrace>(
          dataset::randomTrace(c.n, trace_rounds,
                               1 + static_cast<int>(c.adv_seed % 3),
                               c.adv_seed));
      adv::TraceReplayOptions options;
      switch (c.adv_seed % 3) {
        case 0: options.policy = adv::TraceReplayOptions::EndPolicy::kWrap; break;
        case 1: options.policy = adv::TraceReplayOptions::EndPolicy::kClamp; break;
        default: options.policy = adv::TraceReplayOptions::EndPolicy::kMirror;
      }
      options.seeded_offset = (c.adv_seed / 3) % 2 == 0;
      options.seed = c.adv_seed;
      return std::make_unique<adv::TraceAdversary>(std::move(trace), options);
    }
  }
}

std::unique_ptr<ProcessFactory> makeFactory(const FuzzConfig& c) {
  switch (c.protocol) {
    case 0:
      return std::make_unique<proto::FloodFactory>(
          0, 0x2a, 8, proto::FloodMode::kDeterministic, c.rounds / 2);
    case 1:
      return std::make_unique<proto::FloodFactory>(
          0, 0x2a, 8, proto::FloodMode::kRandomized, c.rounds / 2);
    case 2: {
      std::vector<std::uint64_t> values;
      for (NodeId v = 0; v < c.n; ++v) {
        values.push_back(static_cast<std::uint64_t>((v * 37 + 11) % 100));
      }
      return std::make_unique<proto::MaxFloodFactory>(std::move(values), 8,
                                                      c.rounds);
    }
    case 3:
      return std::make_unique<proto::RandomBabblerFactory>(20);
    case 4:
      return std::make_unique<proto::DiamExactFactory>();
    case 5:
      return std::make_unique<proto::Diam2ApproxFactory>(0);
    default:
      return std::make_unique<proto::Diam32ApproxFactory>(c.adv_seed);
  }
}

/// Deterministic config #index from the master stream.  Sampling draws a
/// fixed count of values per config, so config i is reproducible without
/// replaying configs 0..i-1.
FuzzConfig sampleConfig(std::uint64_t master_seed, int index) {
  util::Rng rng(util::hashCombine(master_seed, static_cast<std::uint64_t>(index)));
  FuzzConfig c;
  c.n = static_cast<NodeId>(8 + rng.below(17));  // 8..24
  c.rounds = static_cast<Round>(30 + rng.below(41));  // 30..70
  c.adversary = static_cast<int>(rng.below(kAdversaryKinds));
  c.protocol = static_cast<int>(rng.below(7));
  c.adv_seed = rng.u64();
  c.run_seed = rng.u64();
  c.with_sink = rng.below(3) == 0;
  c.faulty = rng.below(2) == 0;
  if (c.faulty) {
    c.fc.drop_prob = 0.1 * static_cast<double>(rng.below(4));        // 0..0.3
    c.fc.corrupt_prob = 0.1 * static_cast<double>(rng.below(2));     // 0/0.1
    // FloodProcess DYNET_CHECKs foreign tokens, so mangled payloads may
    // only reach protocols that tolerate them.
    c.fc.deliver_corrupted = c.protocol >= 2 && rng.below(2) == 0;
    c.fc.crash_fraction = 0.25 * static_cast<double>(rng.below(2));  // 0/0.25
    c.fc.crash_window = c.rounds / 2;
    c.fc.restart = rng.below(2) == 0;
    c.fc.restart_downtime = 8;
  }
  // Guaranteed crash-restart coverage: every fourth config exercises
  // mid-run restarts regardless of the random draws above, so the
  // arena-delivery flag matrix always sees a node whose state machine is
  // torn down and re-created while arena inboxes are live
  // (tests/faults_test.cpp pins a scripted instance of the same scenario).
  if (index % 4 == 1) {
    c.faulty = true;
    c.fc.crash_fraction = std::max(c.fc.crash_fraction, 0.25);
    c.fc.crash_window = std::max<Round>(1, c.rounds / 2);
    c.fc.restart = true;
    c.fc.restart_downtime = 8;
  }
  // The gadget families throw below their minimum size instead of clamping
  // (tests/lowerbound_chain_test.cpp), so the sampler clamps for them.
  if (c.adversary == 10) {
    c.n = std::max(c.n, lb::AchBitGadget::minNodes(0));
  } else if (c.adversary == 11) {
    c.n = std::max(c.n, lb::BkApproxGadget::minNodes(0, bkStretch(c)));
  }
  // The diam_* schedules are affine in n; give them room to cross their
  // phase boundaries (lazy phase-2 init, top-k selection) mid-fuzz.
  if (c.protocol >= 4) {
    c.rounds = std::max<Round>(c.rounds, 3 * c.n + 8);
  }
  return c;
}

std::string describeConfig(const FuzzConfig& c, int index) {
  std::ostringstream out;
  out << "config " << index << ": n=" << c.n << " rounds=" << c.rounds
      << " adversary=" << c.adversary << " protocol=" << c.protocol
      << " adv_seed=" << c.adv_seed << " run_seed=" << c.run_seed
      << " sink=" << c.with_sink << " faulty=" << c.faulty;
  return out.str();
}

struct TrialArtifacts {
  RunResult result;
  std::vector<std::uint64_t> digests;
  std::string trace;
  std::string metrics_json;  // reserved-prefix lines already stripped

  friend bool operator==(const TrialArtifacts& x, const TrialArtifacts& y) {
    return x.result.rounds_executed == y.result.rounds_executed &&
           x.result.all_done == y.result.all_done &&
           x.result.all_done_round == y.result.all_done_round &&
           x.result.done_round == y.result.done_round &&
           x.result.messages_sent == y.result.messages_sent &&
           x.result.bits_sent == y.result.bits_sent &&
           x.result.bits_per_node == y.result.bits_per_node &&
           x.result.max_bits_per_node == y.result.max_bits_per_node &&
           x.result.bits_per_round == y.result.bits_per_round &&
           x.result.crashes == y.result.crashes &&
           x.result.restarts == y.result.restarts &&
           x.result.messages_dropped == y.result.messages_dropped &&
           x.result.messages_corrupted == y.result.messages_corrupted &&
           x.digests == y.digests && x.trace == y.trace &&
           x.metrics_json == y.metrics_json;
  }
};

/// Drops every line mentioning a reserved-prefix metric.  `topology/`,
/// `arena/` and `soa/` report which hot path executed (delta hit rates,
/// arena high water marks, stride-worker shape) and are the ONLY metrics
/// allowed to differ between the legacy and optimized engines.  All paths
/// register the same protocol-level names, so stripping is symmetric and
/// the remainders stay comparable.
std::string stripReservedMetrics(const std::string& json) {
  std::istringstream in(json);
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"topology/") != std::string::npos ||
        line.find("\"arena/") != std::string::npos ||
        line.find("\"soa/") != std::string::npos) {
      continue;
    }
    out << line << '\n';
  }
  return out.str();
}

TrialArtifacts runConfig(const FuzzConfig& c, bool soa_state,
                         bool arena_delivery, bool topology_deltas) {
  const std::unique_ptr<ProcessFactory> factory = makeFactory(c);
  obs::MetricsSink sink;
  EngineConfig config;
  config.max_rounds = c.rounds;
  config.record_topologies = true;
  config.record_actions = true;
  config.stop_when_all_done = false;
  // Random crash schedules on random topologies routinely disconnect the
  // live subgraph; the fuzzer compares implementations on arbitrary
  // inputs, it does not certify model validity — so the model's
  // connectivity guard is off here (and off identically on both paths).
  config.check_connectivity = false;
  // Distance protocols are specified in full-duplex broadcast CONGEST;
  // the flag must be identical on both sides of every comparison.
  config.duplex = c.protocol >= 4;
  config.metrics = c.with_sink ? &sink : nullptr;
  config.soa_state = soa_state;
  config.arena_delivery = arena_delivery;
  config.topology_deltas = topology_deltas;
  Engine engine(*factory, makeAdversary(c), config, c.run_seed);
  if (c.faulty) {
    engine.setFaultInjector(std::make_shared<const faults::FaultInjector>(
        faults::FaultPlan(c.n, c.fc, c.run_seed * 0x9E3779B97F4A7C15ULL + 0xFA),
        factory.get()));
  }
  TrialArtifacts artifacts;
  artifacts.result = engine.run();
  for (NodeId v = 0; v < c.n; ++v) {
    artifacts.digests.push_back(engine.stateDigest(v));
  }
  std::ostringstream trace;
  writeTrace(trace, traceFromEngine(engine));
  artifacts.trace = trace.str();
  if (c.with_sink) {
    std::ostringstream json;
    sink.registry.writeJson(json);
    artifacts.metrics_json = stripReservedMetrics(json.str());
  }
  return artifacts;
}

int configCount() {
  // Unset: the --quick budget (a few seconds of tier-1 ctest time).
  // Set-but-garbage fails loudly instead of silently fuzzing 24 configs —
  // an overnight DYNET_FUZZ_CONFIGS=5OO run must not quietly do nothing.
  return static_cast<int>(
      util::envInt("DYNET_FUZZ_CONFIGS", 24, 1, 100'000'000));
}

TEST(FuzzDiff, OptimizedPathsMatchLegacyByteForByte) {
  const std::uint64_t master_seed = 0xF02Dull;
  const int count = configCount();
  for (int i = 0; i < count; ++i) {
    const FuzzConfig c = sampleConfig(master_seed, i);
    const TrialArtifacts legacy = runConfig(c, false, false, false);
    // All seven non-legacy combinations of {soa_state, arena_delivery,
    // topology_deltas} — the shipping default (true, true, true) plus every
    // partial engine, so a regression in any subsystem is attributed to the
    // right flag.
    for (int combo = 1; combo < 8; ++combo) {
      const bool soa = (combo & 4) != 0;
      const bool arena = (combo & 2) != 0;
      const bool deltas = (combo & 1) != 0;
      const TrialArtifacts other = runConfig(c, soa, arena, deltas);
      EXPECT_TRUE(legacy == other)
          << describeConfig(c, i) << " [soa_state=" << soa
          << " arena_delivery=" << arena << " topology_deltas=" << deltas
          << "]";
    }
    if (HasFailure()) {
      break;  // one reproducible config is enough to debug
    }
  }
}

// The stripper itself is load-bearing for the comparisons above: pin that
// it removes exactly the reserved-prefix lines and nothing else.
TEST(FuzzDiff, ReservedMetricStripping) {
  const std::string json =
      "{\n"
      "    \"engine/rounds\": 5,\n"
      "    \"topology/full_builds\": 5,\n"
      "    \"arena/refs_high_water\": 12,\n"
      "    \"soa//active\": 1,\n"
      "    \"flood/has_token\": 1\n"
      "}\n";
  EXPECT_EQ(stripReservedMetrics(json),
            "{\n    \"engine/rounds\": 5,\n    \"flood/has_token\": 1\n}\n");
}

}  // namespace
}  // namespace dynet::sim
