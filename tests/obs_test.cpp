// Observability layer: metrics registry semantics, JSON round trips,
// trace-event output, DYNET_PROF, and — most importantly — the engine
// integration contracts: a null sink is byte-identical to no sink, sink
// metrics agree with RunResult, and metrics.json is deterministic for
// identical seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include "adversary/churn_adversaries.h"
#include "adversary/dynamic_adversaries.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/sink.h"
#include "obs/trace_events.h"
#include "protocols/flood.h"
#include "protocols/resilient_flood.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "util/check.h"

namespace dynet {
namespace {

using sim::NodeId;
using sim::Round;

// ---------------------------------------------------------------- registry

TEST(Metrics, HandlesAreStableAndSharedByName) {
  obs::MetricsRegistry registry;
  EXPECT_TRUE(registry.empty());
  obs::Counter* c = registry.counter("a");
  c->inc();
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler/" + std::to_string(i));
  }
  EXPECT_EQ(registry.counter("a"), c);  // same handle after 100 inserts
  registry.counter("a")->inc(2);
  EXPECT_EQ(c->value, 3u);
  EXPECT_FALSE(registry.empty());
}

TEST(Metrics, HistogramBucketsAndStats) {
  obs::Histogram h({1, 10, 100});
  h.observe(1);    // first bucket (x <= bound)
  h.observe(5);
  h.observe(50);
  h.observe(500);  // overflow
  ASSERT_EQ(h.bucketCounts().size(), 4u);
  EXPECT_EQ(h.bucketCounts()[0], 1u);
  EXPECT_EQ(h.bucketCounts()[1], 1u);
  EXPECT_EQ(h.bucketCounts()[2], 1u);
  EXPECT_EQ(h.bucketCounts()[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 556);
  EXPECT_DOUBLE_EQ(h.min(), 1);
  EXPECT_DOUBLE_EQ(h.max(), 500);
  // Percentile estimates stay clamped to [min, max] and are monotone.
  EXPECT_DOUBLE_EQ(h.percentileEstimate(0), 1);
  EXPECT_DOUBLE_EQ(h.percentileEstimate(1), 500);
  EXPECT_LE(h.percentileEstimate(0.25), h.percentileEstimate(0.75));
}

TEST(Metrics, SeriesSetAtZeroFills) {
  obs::Series s;
  s.setAt(3, 7);
  ASSERT_EQ(s.values().size(), 4u);
  EXPECT_DOUBLE_EQ(s.values()[0], 0);
  EXPECT_DOUBLE_EQ(s.values()[3], 7);
  s.setAt(0, 1);  // overwrite without resizing
  EXPECT_DOUBLE_EQ(s.values()[0], 1);
  EXPECT_EQ(s.values().size(), 4u);
}

// ------------------------------------------------------------------- JSON

TEST(Json, MetricsRoundTrip) {
  obs::MetricsRegistry registry;
  registry.counter("engine/messages_sent")->inc(12345);
  registry.gauge("engine/rounds")->set(17.5);
  obs::Histogram* h = registry.histogram("lat", {1, 2, 4});
  h->observe(3);
  registry.series("round/bits")->append(8);
  registry.series("round/bits")->append(16);

  const obs::Json root = obs::Json::parse(registry.toJson());
  EXPECT_DOUBLE_EQ(root.at("dynet_metrics").number(), 1);
  EXPECT_DOUBLE_EQ(root.at("counters").at("engine/messages_sent").number(),
                   12345);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("engine/rounds").number(), 17.5);
  const obs::Json& hist = root.at("histograms").at("lat");
  EXPECT_DOUBLE_EQ(hist.at("count").number(), 1);
  EXPECT_DOUBLE_EQ(hist.at("sum").number(), 3);
  ASSERT_EQ(hist.at("bounds").items().size(), 3u);
  ASSERT_EQ(hist.at("counts").items().size(), 4u);
  EXPECT_DOUBLE_EQ(hist.at("counts").items()[2].number(), 1);
  const auto& series = root.at("series").at("round/bits").items();
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[1].number(), 16);
}

TEST(Json, ParsesEscapesAndNesting) {
  const obs::Json v = obs::Json::parse(
      R"({"a": [1, -2.5e2, true, false, null], "b\n": {"c": "x\"y"}})");
  EXPECT_DOUBLE_EQ(v.at("a").items()[1].number(), -250);
  EXPECT_TRUE(v.at("a").items()[2].boolean());
  EXPECT_EQ(v.at("b\n").at("c").str(), "x\"y");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(obs::Json::parse(""), util::CheckError);
  EXPECT_THROW(obs::Json::parse("{"), util::CheckError);
  EXPECT_THROW(obs::Json::parse("{\"a\": 1,}"), util::CheckError);
  EXPECT_THROW(obs::Json::parse("[1 2]"), util::CheckError);
  EXPECT_THROW(obs::Json::parse("nul"), util::CheckError);
  EXPECT_THROW(obs::Json::parse("{} trailing"), util::CheckError);
}

TEST(Json, LargeCountersRoundTripExactly) {
  obs::MetricsRegistry registry;
  const std::uint64_t big = (std::uint64_t{1} << 53) - 1;  // exact in double
  registry.counter("big")->inc(big);
  const obs::Json root = obs::Json::parse(registry.toJson());
  EXPECT_EQ(static_cast<std::uint64_t>(root.at("counters").at("big").number()),
            big);
}

// ----------------------------------------------------------- trace events

TEST(TraceEvents, ChromeTraceAndJsonlAreWellFormed) {
  obs::TraceWriter writer;
  writer.span("phase", 1, 5, {{"round", 3}});
  writer.counter("bits", 5, 42);
  writer.instant("marker", 6);
  ASSERT_EQ(writer.events().size(), 3u);

  std::ostringstream chrome;
  writer.writeChromeTrace(chrome);
  const obs::Json root = obs::Json::parse(chrome.str());
  const auto& events = root.at("traceEvents").items();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at("name").str(), "phase");
  EXPECT_EQ(events[0].at("ph").str(), "X");
  EXPECT_DOUBLE_EQ(events[0].at("dur").number(), 4);
  EXPECT_DOUBLE_EQ(events[0].at("args").at("round").number(), 3);
  EXPECT_EQ(events[1].at("ph").str(), "C");
  EXPECT_EQ(events[2].at("ph").str(), "i");

  std::ostringstream jsonl;
  writer.writeJsonl(jsonl);
  std::istringstream lines(jsonl.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    const obs::Json event = obs::Json::parse(line);
    EXPECT_TRUE(event.has("name"));
    ++parsed;
  }
  EXPECT_EQ(parsed, 3);
}

TEST(TraceEvents, BufferCapCountsDropped) {
  obs::TraceWriter writer(/*max_events=*/2);
  writer.instant("a", 0);
  writer.instant("b", 1);
  writer.instant("c", 2);
  EXPECT_EQ(writer.events().size(), 2u);
  EXPECT_EQ(writer.dropped(), 1u);
}

// -------------------------------------------------------------- profiling

TEST(Metrics, HistogramMergeAddsSamplesAndFoldsStats) {
  const std::vector<double> bounds = {1, 10, 100};
  obs::Histogram a(bounds);
  obs::Histogram b(bounds);
  a.observe(0.5);
  a.observe(50);
  b.observe(5);
  b.observe(500);  // overflow bucket
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 555.5);
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_DOUBLE_EQ(a.max(), 500);
  EXPECT_EQ(a.bucketCounts(), (std::vector<std::uint64_t>{1, 1, 1, 1}));
  // Merging an empty histogram must not corrupt min/max.
  a.merge(obs::Histogram(bounds));
  EXPECT_DOUBLE_EQ(a.min(), 0.5);
  EXPECT_EQ(a.count(), 4u);
  obs::Histogram mismatched(std::vector<double>{1, 2});
  EXPECT_THROW(a.merge(mismatched), util::CheckError);
}

TEST(Metrics, MergeFromCombinesPerThreadRegistries) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("c")->inc(2);
  b.counter("c")->inc(3);
  b.counter("only_b")->inc(1);
  a.gauge("g")->set(1);
  b.gauge("g")->set(7);
  a.histogram("h", {10, 100})->observe(5);
  b.histogram("h", {10, 100})->observe(50);
  a.series("s")->append(1);
  b.series("s")->append(2);
  a.mergeFrom(b);
  EXPECT_EQ(a.counters().at("c").value, 5u);
  EXPECT_EQ(a.counters().at("only_b").value, 1u);
  EXPECT_DOUBLE_EQ(a.gauges().at("g").value, 7);  // last write wins
  EXPECT_EQ(a.histograms().at("h").count(), 2u);
  EXPECT_EQ(a.allSeries().at("s").values(),
            (std::vector<double>{1, 2}));
}

// ------------------------------------------------------------ event stream

TEST(Events, SerializeIsOrderedTypedJson) {
  obs::Event e("unit_test");
  e.str("name", "a \"b\"\n").num("count", 3).boolean("flag", true);
  const std::string line = e.serialize(7, 1234);
  EXPECT_EQ(line,
            "{\"dynet_event\":1,\"seq\":7,\"ts_ms\":1234,"
            "\"type\":\"unit_test\",\"name\":\"a \\\"b\\\"\\n\","
            "\"count\":3,\"flag\":true}");
  const obs::Json parsed = obs::Json::parse(line);
  EXPECT_EQ(parsed.at("seq").number(), 7);
  EXPECT_EQ(parsed.at("type").str(), "unit_test");
  EXPECT_TRUE(parsed.at("flag").boolean());
}

TEST(Events, WriterAppendsAndContinuesSeqAcrossReopen) {
  const std::string path = ::testing::TempDir() + "events_reopen.jsonl";
  std::filesystem::remove(path);
  {
    obs::EventWriter writer(path);
    EXPECT_EQ(writer.emit(obs::Event("a")), 0u);
    EXPECT_EQ(writer.emit(obs::Event("b")), 1u);
  }
  {
    obs::EventWriter writer(path);
    EXPECT_EQ(writer.nextSeq(), 2u);  // continues from surviving lines
    EXPECT_EQ(writer.emit(obs::Event("c")), 2u);
  }
  std::ifstream in(path);
  std::string line;
  std::uint64_t expect_seq = 0;
  while (std::getline(in, line)) {
    const obs::Json parsed = obs::Json::parse(line);
    EXPECT_EQ(parsed.at("dynet_event").number(), 1);
    EXPECT_EQ(parsed.at("seq").number(), static_cast<double>(expect_seq));
    ++expect_seq;
  }
  EXPECT_EQ(expect_seq, 3u);
  std::filesystem::remove(path);
}

TEST(Events, WriterRepairsTornTailOnReopen) {
  const std::string path = ::testing::TempDir() + "events_torn.jsonl";
  std::filesystem::remove(path);
  {
    obs::EventWriter writer(path);
    writer.emit(obs::Event("a"));
    writer.emit(obs::Event("b"));
  }
  {
    // A writer SIGKILLed mid-record leaves a line without its newline.
    std::ofstream out(path, std::ios::app);
    out << "{\"dynet_event\":1,\"seq\":2,\"ty";
  }
  {
    obs::EventWriter writer(path);
    EXPECT_EQ(writer.nextSeq(), 2u);  // torn record dropped, not counted
    writer.emit(obs::Event("c"));
  }
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> types;
  while (std::getline(in, line)) {
    types.push_back(obs::Json::parse(line).at("type").str());
  }
  EXPECT_EQ(types, (std::vector<std::string>{"a", "b", "c"}));
  std::filesystem::remove(path);
}

TEST(Events, WriterIsThreadSafeAndAssignsUniqueSeqs) {
  std::string sink;
  obs::EventWriter writer(&sink);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&writer] {
      for (int i = 0; i < 50; ++i) {
        writer.emit(obs::Event("tick"));
      }
    });
  }
  for (std::thread& t : threads) {
    t.join();
  }
  std::istringstream lines(sink);
  std::string line;
  std::vector<double> seqs;
  while (std::getline(lines, line)) {
    seqs.push_back(obs::Json::parse(line).at("seq").number());
  }
  EXPECT_EQ(seqs.size(), 200u);
  std::sort(seqs.begin(), seqs.end());
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], static_cast<double>(i));
  }
}

TEST(Prof, RecordProfSampleUsesTheTimerShape) {
  obs::MetricsRegistry registry;
  obs::recordProfSample(registry, "campaign//execute", 1500.0);
  obs::recordProfSample(registry, "campaign//execute", 500.0);
  EXPECT_EQ(registry.counters().at("campaign//execute/calls").value, 2u);
  EXPECT_EQ(registry.counters().at("campaign//execute/total_us").value,
            2000u);
  EXPECT_EQ(registry.histograms().at("campaign//execute/us").count(), 2u);
}

TEST(Prof, ScopedTimersAggregateIntoRegistry) {
  obs::MetricsRegistry registry;
  {
    obs::ProfScope scope(&registry);
    for (int i = 0; i < 3; ++i) {
      DYNET_PROF("test/op");
    }
  }
  EXPECT_EQ(registry.counters().at("prof/test/op/calls").value, 3u);
  EXPECT_EQ(registry.histograms().at("prof/test/op/us").count(), 3u);
  {
    // No scope installed: DYNET_PROF is a no-op, not a crash.
    DYNET_PROF("test/ignored");
  }
  EXPECT_EQ(registry.counters().count("prof/test/ignored/calls"), 0u);
}

// ------------------------------------------------------ engine integration

struct BuiltRun {
  std::unique_ptr<sim::Engine> engine;
  sim::RunResult result;
};

BuiltRun runFlood(NodeId n, std::uint64_t seed, obs::MetricsSink* sink,
                  const faults::FaultConfig* fc = nullptr) {
  proto::FloodFactory factory(0, 0x2a, 8, proto::FloodMode::kRandomized,
                              /*halt_round=*/60);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = 80;
  config.record_topologies = true;
  config.record_actions = true;
  config.stop_when_all_done = false;
  config.metrics = sink;
  auto engine = std::make_unique<sim::Engine>(
      std::move(ps),
      std::make_unique<adv::RandomGraphAdversary>(n, 0.5, /*seed=*/9), config,
      seed);
  if (fc != nullptr) {
    // Plan seed derived from the run seed: different seeds get different
    // fault schedules, identical seeds replay the same one.
    engine->setFaultInjector(std::make_shared<const faults::FaultInjector>(
        faults::FaultPlan(n, *fc, seed * 0x9E3779B97F4A7C15ULL + 0xFA),
        &factory));
  }
  BuiltRun run;
  run.result = engine->run();
  run.engine = std::move(engine);
  return run;
}

TEST(EngineObs, NullSinkRunIsByteIdenticalToSinkRun) {
  // The observability layer must be read-only: attaching a sink changes
  // nothing about the execution (results, per-process state, full trace).
  const NodeId n = 16;
  obs::MetricsSink sink;
  const BuiltRun with = runFlood(n, 123, &sink);
  const BuiltRun without = runFlood(n, 123, nullptr);
  EXPECT_EQ(with.result.rounds_executed, without.result.rounds_executed);
  EXPECT_EQ(with.result.done_round, without.result.done_round);
  EXPECT_EQ(with.result.messages_sent, without.result.messages_sent);
  EXPECT_EQ(with.result.bits_sent, without.result.bits_sent);
  EXPECT_EQ(with.result.bits_per_node, without.result.bits_per_node);
  EXPECT_EQ(with.result.bits_per_round, without.result.bits_per_round);
  EXPECT_EQ(with.result.max_bits_per_node, without.result.max_bits_per_node);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(with.engine->process(v).stateDigest(),
              without.engine->process(v).stateDigest());
  }
  std::ostringstream trace_with;
  std::ostringstream trace_without;
  sim::writeTrace(trace_with, sim::traceFromEngine(*with.engine));
  sim::writeTrace(trace_without, sim::traceFromEngine(*without.engine));
  EXPECT_EQ(trace_with.str(), trace_without.str());
}

TEST(EngineObs, SinkMetricsAgreeWithRunResult) {
  obs::MetricsSink sink;
  const BuiltRun run = runFlood(16, 5, &sink);
  const auto& reg = sink.registry;
  EXPECT_EQ(reg.counters().at("engine/messages_sent").value,
            run.result.messages_sent);
  EXPECT_EQ(reg.counters().at("engine/bits_sent").value,
            run.result.bits_sent);
  EXPECT_DOUBLE_EQ(reg.gauges().at("engine/rounds").value,
                   static_cast<double>(run.result.rounds_executed));
  EXPECT_DOUBLE_EQ(reg.gauges().at("engine/max_bits_per_node").value,
                   static_cast<double>(run.result.max_bits_per_node));
  const auto& round_bits = reg.allSeries().at("round/bits_sent").values();
  ASSERT_EQ(round_bits.size(),
            static_cast<std::size_t>(run.result.rounds_executed));
  double total = 0;
  for (const double b : round_bits) {
    total += b;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(run.result.bits_sent));
  const auto& node_bits = reg.allSeries().at("node/bits_sent").values();
  ASSERT_EQ(node_bits.size(), run.result.bits_per_node.size());
  std::uint64_t max_node = 0;
  for (std::size_t v = 0; v < node_bits.size(); ++v) {
    EXPECT_DOUBLE_EQ(node_bits[v],
                     static_cast<double>(run.result.bits_per_node[v]));
    max_node = std::max(max_node, run.result.bits_per_node[v]);
  }
  EXPECT_EQ(run.result.max_bits_per_node, max_node);
  EXPECT_EQ(reg.histograms().at("engine/bits_per_send").count(),
            run.result.messages_sent);
  // Protocol exportMetrics hook: flood/has_token per node.
  EXPECT_EQ(reg.allSeries().at("node/flood/has_token").values().size(),
            static_cast<std::size_t>(16));
}

TEST(EngineObs, FaultCountersAgreeWithRunResult) {
  faults::FaultConfig fc;
  fc.drop_prob = 0.2;
  fc.corrupt_prob = 0.1;
  // Detect-and-drop corruption: the plain FloodProcess rejects mangled
  // tokens loudly, so mangled payloads must not reach it.
  fc.deliver_corrupted = false;
  fc.crash_fraction = 0.25;
  fc.crash_window = 20;
  fc.restart = true;
  fc.restart_downtime = 10;
  obs::MetricsSink sink;
  const BuiltRun run = runFlood(16, 7, &sink, &fc);
  EXPECT_GT(run.result.messages_dropped, 0u);
  EXPECT_GT(run.result.crashes, 0u);
  const auto& reg = sink.registry;
  EXPECT_EQ(reg.counters().at("faults/messages_dropped").value,
            run.result.messages_dropped);
  EXPECT_EQ(reg.counters().at("faults/messages_corrupted").value,
            run.result.messages_corrupted);
  EXPECT_EQ(reg.counters().at("faults/crashes").value, run.result.crashes);
  EXPECT_EQ(reg.counters().at("faults/restarts").value, run.result.restarts);
}

TEST(EngineObs, MetricsJsonDeterministicForIdenticalSeeds) {
  // The determinism contract of docs/OBSERVABILITY.md: same seed, same
  // metrics.json, byte for byte (no prof timers installed here — wall-clock
  // prof/ metrics are the documented exception).
  faults::FaultConfig fc;
  fc.drop_prob = 0.1;
  fc.crash_fraction = 0.2;
  fc.crash_window = 16;
  obs::MetricsSink a;
  obs::MetricsSink b;
  runFlood(16, 42, &a, &fc);
  runFlood(16, 42, &b, &fc);
  EXPECT_FALSE(a.registry.empty());
  EXPECT_EQ(a.registry.toJson(), b.registry.toJson());
  obs::MetricsSink c;
  runFlood(16, 43, &c, &fc);
  EXPECT_NE(a.registry.toJson(), c.registry.toJson());  // seed matters
}

TEST(EngineObs, RoundPhaseSpansCoverEveryRound) {
  obs::TraceWriter writer;
  obs::MetricsSink sink;
  sink.trace = &writer;
  faults::FaultConfig fc;
  fc.crash_fraction = 0.2;
  fc.crash_window = 20;
  const BuiltRun run = runFlood(16, 11, &sink, &fc);
  std::map<std::string, int> spans;
  for (const obs::TraceEvent& event : writer.events()) {
    if (event.ph == 'X') {
      ++spans[event.name];
    }
  }
  const int rounds = static_cast<int>(run.result.rounds_executed);
  EXPECT_EQ(spans["adversary_pick"], rounds);
  EXPECT_EQ(spans["process_step"], rounds);
  EXPECT_EQ(spans["delivery"], rounds);
  EXPECT_EQ(spans["fault_hook"], rounds);  // injector attached
}

TEST(EngineObs, SequentialEnginesAggregateIntoSharedSink) {
  obs::MetricsSink sink;
  const BuiltRun first = runFlood(8, 1, &sink);
  const BuiltRun second = runFlood(8, 2, &sink);
  EXPECT_EQ(sink.registry.counters().at("engine/messages_sent").value,
            first.result.messages_sent + second.result.messages_sent);
}

TEST(EngineObs, ResilientFloodExportsRetransmissions) {
  const NodeId n = 12;
  proto::ResilientFloodFactory factory{proto::ResilientFloodConfig{}};
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  obs::MetricsSink sink;
  sim::EngineConfig config;
  config.max_rounds = 500;
  config.metrics = &sink;
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::RandomGraphAdversary>(n, 0.3, 3),
                     config, /*seed=*/21);
  faults::FaultConfig fc;
  fc.drop_prob = 0.3;
  engine.setFaultInjector(std::make_shared<const faults::FaultInjector>(
      faults::FaultPlan(n, fc, 0xFA), &factory));
  engine.run();
  const auto& series = sink.registry.allSeries();
  ASSERT_EQ(series.count("node/resilient_flood/retransmissions"), 1u);
  double total_retx = 0;
  for (const double r : series.at("node/resilient_flood/retransmissions").values()) {
    total_retx += r;
  }
  EXPECT_GT(total_retx, 0) << "30% loss must force re-sends";
}

}  // namespace
}  // namespace dynet
