// Tests for the second protocol wave: diameter estimation (static
// soundness + dynamic bait-and-switch) and k-token gossip.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/dynamic_adversaries.h"
#include "adversary/static_adversaries.h"
#include "protocols/diameter_estimate.h"
#include "protocols/gossip.h"
#include "sim/engine.h"

namespace dynet::proto {
namespace {

using sim::NodeId;
using sim::Round;

// --- Diameter estimation ---

TEST(DiameterEstimateSchedule, StagesPartition) {
  DiameterEstimateConfig config;
  config.n = 100;
  DiameterEstimateSchedule schedule(config);
  Round r = 1;
  for (int phase = 0; phase < 4; ++phase) {
    for (Round off = 0; off < schedule.floodLen(phase); ++off, ++r) {
      const auto pos = schedule.locate(r);
      ASSERT_EQ(pos.phase, phase);
      ASSERT_EQ(pos.stage, 0);
      ASSERT_EQ(pos.offset, off);
    }
    for (Round off = 0; off < schedule.countLen(phase); ++off, ++r) {
      const auto pos = schedule.locate(r);
      ASSERT_EQ(pos.phase, phase);
      ASSERT_EQ(pos.stage, 1);
      ASSERT_EQ(pos.offset, off);
    }
  }
  EXPECT_EQ(schedule.cumulativeFlood(3), 1 + 2 + 4 + 8);
}

struct EstimateOutcome {
  std::uint64_t dhat = 0;
  Round rounds = 0;
  bool all_agree = true;
};

EstimateOutcome runEstimator(net::GraphPtr graph, std::uint64_t seed) {
  const NodeId n = graph->numNodes();
  DiameterEstimateConfig config;
  config.n = n;
  DiameterEstimateFactory factory(config, seed);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig engine_config;
  engine_config.max_rounds = 10'000'000;
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::StaticAdversary>(graph),
                     engine_config, seed);
  const auto result = engine.run();
  EstimateOutcome outcome;
  if (result.all_done) {
    outcome.dhat = engine.process(0).output();
    outcome.rounds = result.all_done_round;
    for (NodeId v = 0; v < n; ++v) {
      outcome.all_agree =
          outcome.all_agree && engine.process(v).output() == outcome.dhat;
    }
  }
  return outcome;
}

class StaticEstimateSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(StaticEstimateSweep, EstimateWithinDoublingFactor) {
  const auto [shape, n] = GetParam();
  net::GraphPtr graph;
  if (std::string(shape) == "path") {
    graph = net::makePath(static_cast<NodeId>(n));
  } else if (std::string(shape) == "ring") {
    graph = net::makeRing(static_cast<NodeId>(n));
  } else {
    graph = net::makeStar(static_cast<NodeId>(n));
  }
  const int ecc = net::causalEccentricity(
      net::TopologySeq(static_cast<std::size_t>(3 * n), graph), 0, 0);
  const EstimateOutcome outcome = runEstimator(graph, 5);
  ASSERT_GT(outcome.dhat, 0u) << shape;
  EXPECT_TRUE(outcome.all_agree);
  // Doubling windows + the (1-eps) count threshold: D-hat in [0.8 ecc, 4 ecc].
  EXPECT_GE(static_cast<double>(outcome.dhat), 0.8 * ecc) << shape;
  EXPECT_LE(static_cast<double>(outcome.dhat), 4.0 * ecc + 4) << shape;
}

INSTANTIATE_TEST_SUITE_P(Shapes, StaticEstimateSweep,
                         ::testing::Combine(::testing::Values("path", "ring",
                                                              "star"),
                                            ::testing::Values(16, 48)));

TEST(DiameterEstimate, FactoryValidatesN) {
  DiameterEstimateConfig config;
  config.n = 10;
  DiameterEstimateFactory factory(config, 1);
  EXPECT_THROW(factory.create(0, 12), util::CheckError);
}

TEST(DiameterEstimate, PastOnlyGuarantee) {
  // The estimate is about the past: a clique-then-path adversary yields a
  // tiny D-hat although the execution's overall dynamic diameter is Θ(N).
  const NodeId n = 32;
  class Switcher : public sim::Adversary {
   public:
    explicit Switcher(NodeId n, Round switch_round)
        : n_(n), switch_round_(switch_round) {}
    net::GraphPtr topology(Round r, const sim::RoundObservation&) override {
      return r < switch_round_ ? net::makeClique(n_) : net::makePath(n_);
    }
    NodeId numNodes() const override { return n_; }

   private:
    NodeId n_;
    Round switch_round_;
  };
  DiameterEstimateConfig config;
  config.n = n;
  DiameterEstimateFactory factory(config, 3);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig engine_config;
  engine_config.max_rounds = 1'000'000;
  // Switch far after the declaration (declaration lands within ~3k rounds).
  sim::Engine engine(std::move(ps), std::make_unique<Switcher>(n, 100'000),
                     engine_config, 3);
  const auto result = engine.run();
  ASSERT_TRUE(result.all_done);
  EXPECT_LE(engine.process(0).output(), 4u);  // clique past: tiny estimate
  // The estimate says nothing about the post-switch epoch, whose diameter
  // is n-1 — bench_static_vs_dynamic quantifies the resulting CFLOOD
  // failure.
}

// --- Gossip ---

TEST(Gossip, TokensFitBudgetAndSpread) {
  const NodeId n = 40;
  const int k = 8;
  const Round budget = gossipRounds(k, 8, n);
  GossipFactory factory(k, budget);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = budget + 1;
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::RandomTreeAdversary>(n, 4), config, 4);
  const auto result = engine.run();
  ASSERT_TRUE(result.all_done);
  for (NodeId v = 0; v < n; ++v) {
    const auto* p = dynamic_cast<const GossipProcess*>(&engine.process(v));
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(p->hasAll()) << v;
    EXPECT_GT(p->completeRound(), 0) << v;
  }
}

TEST(Gossip, MoreTokensTakeLonger) {
  const NodeId n = 48;
  auto completion = [&](int k) {
    const Round budget = gossipRounds(k, 8, n);
    GossipFactory factory(k, budget);
    std::vector<std::unique_ptr<sim::Process>> ps;
    for (NodeId v = 0; v < n; ++v) {
      ps.push_back(factory.create(v, n));
    }
    sim::EngineConfig config;
    config.max_rounds = budget + 1;
    sim::Engine engine(std::move(ps),
                       std::make_unique<adv::RandomTreeAdversary>(n, 9), config,
                       9);
    engine.run();
    Round worst = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto* p = dynamic_cast<const GossipProcess*>(&engine.process(v));
      worst = std::max(worst, p->completeRound());
    }
    return worst;
  };
  EXPECT_LT(completion(2), completion(32));
}

TEST(Gossip, InitialAssignmentWrapsModuloN) {
  // k > N: node 0 starts with tokens {0, N, 2N, ...}.
  GossipFactory factory(/*total_tokens=*/10, /*total_rounds=*/5);
  auto p = factory.create(0, 4);
  const auto* gp = dynamic_cast<const GossipProcess*>(p.get());
  ASSERT_NE(gp, nullptr);
  EXPECT_EQ(gp->heldCount(), 3);  // tokens 0, 4, 8
}

TEST(Gossip, SingleTokenEqualsFlooding) {
  // k = 1 degenerates to token flooding; completion within a small budget.
  const NodeId n = 32;
  const Round budget = gossipRounds(1, 6, n);
  GossipFactory factory(1, budget);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = budget + 1;
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::ShufflePathAdversary>(n, 2), config, 2);
  engine.run();
  for (NodeId v = 0; v < n; ++v) {
    const auto* p = dynamic_cast<const GossipProcess*>(&engine.process(v));
    EXPECT_TRUE(p->hasAll());
  }
}

TEST(Gossip, RejectsBadTokens) {
  EXPECT_THROW(GossipProcess({5}, 3, 10), util::CheckError);
  EXPECT_THROW(GossipProcess({-1}, 3, 10), util::CheckError);
}

}  // namespace
}  // namespace dynet::proto
