// Unit tests for util: bit I/O, RNG/coin streams, stats, tables, CLI,
// thread pool, check macro.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "util/bitio.h"
#include "util/check.h"
#include "util/cli.h"
#include "util/env.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace dynet::util {
namespace {

TEST(Check, ThrowsWithMessage) {
  try {
    DYNET_CHECK(1 == 2) << "context " << 42;
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  DYNET_CHECK(true) << "never evaluated";
  SUCCEED();
}

TEST(BitWidth, Basics) {
  EXPECT_EQ(bitWidthFor(1), 1);
  EXPECT_EQ(bitWidthFor(2), 1);
  EXPECT_EQ(bitWidthFor(3), 2);
  EXPECT_EQ(bitWidthFor(4), 2);
  EXPECT_EQ(bitWidthFor(5), 3);
  EXPECT_EQ(bitWidthFor(1024), 10);
  EXPECT_EQ(bitWidthFor(1025), 11);
}

class BitIoRoundtrip : public ::testing::TestWithParam<int> {};

TEST_P(BitIoRoundtrip, WriteReadMatchesAtEveryWidth) {
  const int width = GetParam();
  Rng rng(static_cast<std::uint64_t>(width) * 77);
  std::vector<std::uint64_t> words(8, 0);
  std::vector<std::uint64_t> values;
  BitWriter writer(words, 512);
  int budget = 512;
  while (budget >= width) {
    std::uint64_t v = rng.u64();
    if (width < 64) {
      v &= (std::uint64_t{1} << width) - 1;
    }
    writer.put(v, width);
    values.push_back(v);
    budget -= width;
  }
  BitReader reader(words, writer.bitsWritten());
  for (const std::uint64_t v : values) {
    EXPECT_EQ(reader.get(width), v);
  }
  EXPECT_EQ(reader.bitsRemaining(), 0);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitIoRoundtrip,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 13, 16, 17, 31,
                                           32, 33, 48, 63, 64));

TEST(BitIo, MixedWidthSequence) {
  std::vector<std::uint64_t> words(4, 0);
  BitWriter writer(words, 256);
  writer.put(1, 1);
  writer.put(0x2a, 6);
  writer.put(0xdeadbeef, 32);
  writer.put(0, 3);
  writer.put(0x1ffff, 17);
  BitReader reader(words, writer.bitsWritten());
  EXPECT_EQ(reader.get(1), 1u);
  EXPECT_EQ(reader.get(6), 0x2au);
  EXPECT_EQ(reader.get(32), 0xdeadbeefu);
  EXPECT_EQ(reader.get(3), 0u);
  EXPECT_EQ(reader.get(17), 0x1ffffu);
}

TEST(BitIo, BudgetEnforced) {
  std::vector<std::uint64_t> words(4, 0);
  BitWriter writer(words, 10);
  writer.put(0x3ff, 10);
  EXPECT_THROW(writer.put(1, 1), CheckError);
}

TEST(BitIo, ValueWiderThanFieldRejected) {
  std::vector<std::uint64_t> words(4, 0);
  BitWriter writer(words, 64);
  EXPECT_THROW(writer.put(4, 2), CheckError);
}

TEST(BitIo, ReadPastEndRejected) {
  std::vector<std::uint64_t> words(4, 0);
  BitReader reader(words, 8);
  reader.get(8);
  EXPECT_THROW(reader.get(1), CheckError);
}

TEST(Real16, ZeroRoundtrips) {
  EXPECT_EQ(encodeReal16(0.0), 0);
  EXPECT_EQ(decodeReal16(0), 0.0);
}

TEST(Real16, RelativeErrorSmall) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double x = std::exp((rng.real() - 0.5) * 60.0);
    const double back = decodeReal16(encodeReal16(x));
    EXPECT_NEAR(back / x, 1.0, 0.004) << "x=" << x;
  }
}

TEST(Real16, Monotone) {
  double prev = 0.0;
  for (int i = 0; i < 65536; i += 17) {
    const double v = decodeReal16(static_cast<std::uint16_t>(i));
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  bool all_same = true;
  bool any_diff_c = false;
  for (int i = 0; i < 100; ++i) {
    const auto va = a.u64();
    all_same = all_same && (va == b.u64());
    any_diff_c = any_diff_c || (va != c.u64());
  }
  EXPECT_TRUE(all_same);
  EXPECT_TRUE(any_diff_c);
}

TEST(Rng, BelowInRangeAndRoughlyUniform) {
  Rng rng(99);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    ++buckets[static_cast<std::size_t>(v)];
  }
  for (const int b : buckets) {
    EXPECT_NEAR(b, 10000, 600);
  }
}

TEST(Rng, ExponentialMeanOne) {
  Rng rng(5);
  double sum = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) {
    const double e = rng.exponential();
    ASSERT_GT(e, 0.0);
    sum += e;
  }
  EXPECT_NEAR(sum / trials, 1.0, 0.02);
}

TEST(CoinStream, PureFunctionOfAddress) {
  CoinStream a(42, 7, 3);
  CoinStream b(42, 7, 3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.u64(), b.u64());
  }
}

TEST(CoinStream, DistinctAcrossNodesAndRounds) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t node = 0; node < 20; ++node) {
    for (std::uint64_t round = 1; round <= 20; ++round) {
      CoinStream s(42, node, round);
      seen.insert(s.u64());
    }
  }
  EXPECT_EQ(seen.size(), 400u);
}

TEST(CoinStream, CoinRoughlyFair) {
  int heads = 0;
  for (std::uint64_t r = 1; r <= 20000; ++r) {
    CoinStream s(1, 0, r);
    heads += s.coin() ? 1 : 0;
  }
  EXPECT_NEAR(heads, 10000, 400);
}

TEST(PrivateSeed, DistinctPerNode) {
  EXPECT_NE(privateSeed(9, 1), privateSeed(9, 2));
  EXPECT_NE(privateSeed(9, 1), privateSeed(10, 1));
  EXPECT_EQ(privateSeed(9, 1), privateSeed(9, 1));
}

TEST(Summary, Moments) {
  Summary s;
  for (const double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.25), 2.0);
}

TEST(Summary, EmptyRejected) {
  Summary s;
  EXPECT_THROW(s.mean(), CheckError);
  EXPECT_THROW(s.percentile(0.5), CheckError);
}

TEST(Summary, SortCacheInvalidatedByAdd) {
  // The percentile sort-cache must not serve stale order statistics after
  // an interleaved add() (the documented invalidation contract in stats.h).
  Summary s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);  // populates the cache
  s.add(0.0);                          // invalidates it
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  s.add(30.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 30.0);
}

TEST(Summary, TailPercentileConveniences) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.p95(), s.percentile(0.95));
  EXPECT_DOUBLE_EQ(s.p99(), s.percentile(0.99));
  EXPECT_NEAR(s.p95(), 95.05, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 1e-9);
  EXPECT_LE(s.median(), s.p95());
  EXPECT_LE(s.p95(), s.p99());
}

TEST(Table, RendersAligned) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{42});
  t.row().cell("b").cell(3.14159, 2);
  const std::string out = t.toString();
  EXPECT_NE(out.find("| alpha |"), std::string::npos);
  EXPECT_NE(out.find("3.14"), std::string::npos);
  // All lines equal length.
  std::istringstream in(out);
  std::string line;
  std::size_t len = 0;
  while (std::getline(in, line)) {
    if (len == 0) {
      len = line.size();
    }
    EXPECT_EQ(line.size(), len);
  }
}

TEST(Table, TooManyCellsRejected) {
  Table t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), CheckError);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--alpha=3", "--beta", "4.5", "--gamma"};
  Cli cli(5, const_cast<char**>(argv));
  EXPECT_EQ(cli.integer("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(cli.real("beta", 0), 4.5);
  EXPECT_TRUE(cli.flag("gamma"));
  EXPECT_EQ(cli.integer("missing", 7), 7);
  cli.rejectUnknown();
}

TEST(Cli, UnknownFlagRejected) {
  const char* argv[] = {"prog", "--typo=1"};
  Cli cli(2, const_cast<char**>(argv));
  EXPECT_THROW(cli.rejectUnknown(), CheckError);
}

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallelFor(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallelFor(100,
                                [](std::size_t i) {
                                  if (i == 57) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int batch = 0; batch < 20; ++batch) {
    std::atomic<int> count{0};
    pool.parallelFor(batch + 1, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), batch + 1);
  }
}

TEST(ThreadPool, ReusableAfterException) {
  // A batch that throws must not poison the pool: workers survive and the
  // next parallelFor still runs every index.
  ThreadPool pool(3);
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_THROW(pool.parallelFor(50,
                                  [](std::size_t i) {
                                    if (i % 10 == 3) {
                                      throw std::runtime_error("boom");
                                    }
                                  }),
                 std::runtime_error);
    std::atomic<int> count{0};
    pool.parallelFor(200, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 200);
  }
}

TEST(ThreadPool, PropagatesCheckError) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallelFor(8,
                       [](std::size_t i) { DYNET_CHECK(i != 5) << "bad"; }),
      CheckError);
}

TEST(ThreadPool, ZeroItemsNoop) {
  ThreadPool pool(2);
  pool.parallelFor(0, [](std::size_t) { FAIL(); });
  SUCCEED();
}

// ------------------------------------------------------------ parseEnvInt

TEST(ParseEnvInt, UnsetOrEmptySelectsFallback) {
  EXPECT_EQ(parseEnvInt("X", nullptr, 7, 1, 100), 7);
  EXPECT_EQ(parseEnvInt("X", "", 7, 1, 100), 7);
}

TEST(ParseEnvInt, ParsesInRangeValues) {
  EXPECT_EQ(parseEnvInt("X", "1", 7, 1, 100), 1);
  EXPECT_EQ(parseEnvInt("X", "100", 7, 1, 100), 100);
  EXPECT_EQ(parseEnvInt("X", "-5", 0, -10, 10), -5);
}

TEST(ParseEnvInt, RejectsGarbageNamingTheVariable) {
  try {
    parseEnvInt("DYNET_WIDGETS", "12abc", 7, 1, 100);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DYNET_WIDGETS"), std::string::npos) << what;
    EXPECT_NE(what.find("12abc"), std::string::npos) << what;
    EXPECT_NE(what.find("1..100"), std::string::npos) << what;
  }
  EXPECT_THROW(parseEnvInt("X", "abc", 7, 1, 100), CheckError);
  EXPECT_THROW(parseEnvInt("X", " 4", 7, 1, 100), CheckError);
  EXPECT_THROW(parseEnvInt("X", "4 ", 7, 1, 100), CheckError);
}

TEST(ParseEnvInt, RejectsOutOfRangeAndOverflow) {
  EXPECT_THROW(parseEnvInt("X", "0", 7, 1, 100), CheckError);
  EXPECT_THROW(parseEnvInt("X", "101", 7, 1, 100), CheckError);
  EXPECT_THROW(parseEnvInt("X", "-1", 7, 1, 100), CheckError);
  // Past INT64_MAX: strtoll saturates with ERANGE; must still be loud.
  EXPECT_THROW(parseEnvInt("X", "99999999999999999999999", 7, 1, 100),
               CheckError);
}

}  // namespace
}  // namespace dynet::util
