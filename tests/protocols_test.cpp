// Known-diameter protocol tests: flooding completes within D, CFLOOD
// correctness, max-flood consensus/leader election, counting estimator
// accuracy, majority thresholds.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/dynamic_adversaries.h"
#include "adversary/static_adversaries.h"
#include "net/diameter.h"
#include "protocols/cflood.h"
#include "protocols/consensus_known_d.h"
#include "protocols/counting.h"
#include "protocols/flood.h"
#include "protocols/majority.h"
#include "util/stats.h"
#include "protocols/max_flood.h"
#include "sim/engine.h"

namespace dynet::proto {
namespace {

using sim::NodeId;
using sim::Round;

std::unique_ptr<sim::Adversary> makeAdversary(const std::string& name, NodeId n,
                                              std::uint64_t seed) {
  if (name == "static_path") {
    return std::make_unique<adv::StaticAdversary>(net::makePath(n));
  }
  if (name == "static_star") {
    return std::make_unique<adv::StaticAdversary>(net::makeStar(n));
  }
  if (name == "static_ring") {
    return std::make_unique<adv::StaticAdversary>(net::makeRing(n));
  }
  if (name == "random_tree") {
    return std::make_unique<adv::RandomTreeAdversary>(n, seed);
  }
  if (name == "rotating_star") {
    return std::make_unique<adv::RotatingStarAdversary>(n);
  }
  if (name == "shuffle_path") {
    return std::make_unique<adv::ShufflePathAdversary>(n, seed);
  }
  return std::make_unique<adv::IntervalAdversary>(n, 8, seed);
}

sim::Engine makeEngine(const sim::ProcessFactory& factory,
                       std::unique_ptr<sim::Adversary> adversary, Round max_rounds,
                       std::uint64_t seed, bool record = false) {
  const NodeId n = adversary->numNodes();
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = max_rounds;
  config.record_topologies = record;
  return sim::Engine(std::move(ps), std::move(adversary), config, seed);
}

// --- Deterministic flooding ---

class FloodSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(FloodSweep, DeterministicFloodCompletesWithinRealizedDiameter) {
  const auto [adv_name, n] = GetParam();
  const std::uint64_t seed = 1234;
  FloodFactory factory(/*source=*/0, /*token=*/7, /*token_bits=*/8,
                       FloodMode::kDeterministic, /*halt_round=*/0);
  auto engine = makeEngine(factory, makeAdversary(adv_name, n, seed), 4 * n,
                           seed, /*record=*/true);
  Round completed = -1;
  for (Round r = 1; r <= 4 * n && completed < 0; ++r) {
    engine.step();
    if (tokenHolderCount(engine) == n) {
      completed = r;
    }
  }
  ASSERT_GT(completed, 0) << adv_name;
  // Token spread = causal reach of the source, so completion is bounded by
  // the source's causal eccentricity in the realized execution.
  const int ecc = net::causalEccentricity(engine.topologies(), 0, 0);
  ASSERT_GT(ecc, 0);
  EXPECT_LE(completed, ecc) << adv_name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, FloodSweep,
    ::testing::Combine(::testing::Values("static_path", "static_star",
                                         "static_ring", "random_tree",
                                         "rotating_star", "shuffle_path",
                                         "interval"),
                       ::testing::Values(8, 33, 100)));

TEST(Flood, RandomizedEventuallyCompletes) {
  const NodeId n = 40;
  FloodFactory factory(0, 3, 4, FloodMode::kRandomized, 0);
  auto engine = makeEngine(factory, makeAdversary("random_tree", n, 5), 4000, 5);
  Round completed = -1;
  for (Round r = 1; r <= 4000 && completed < 0; ++r) {
    engine.step();
    if (tokenHolderCount(engine) == n) {
      completed = r;
    }
  }
  EXPECT_GT(completed, 0);
}

TEST(Flood, TokenRoundZeroAtSourceMinusOneElsewhereInitially) {
  FloodFactory factory(2, 9, 4, FloodMode::kDeterministic, 0);
  auto p0 = factory.create(0, 4);
  auto p2 = factory.create(2, 4);
  EXPECT_EQ(static_cast<FloodProcess*>(p0.get())->tokenRound(), -1);
  EXPECT_EQ(static_cast<FloodProcess*>(p2.get())->tokenRound(), 0);
  EXPECT_TRUE(static_cast<FloodProcess*>(p2.get())->hasToken());
}

// --- CFLOOD ---

class CFloodSweep
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(CFloodSweep, KnownDiameterConfirmsCorrectly) {
  const auto [adv_name, n] = GetParam();
  const std::uint64_t seed = 99;
  // First measure the realized diameter with a recording run, then rerun
  // CFLOOD with that D as the known-diameter input.
  FloodFactory probe(0, 1, 2, FloodMode::kDeterministic, 0);
  auto probe_engine =
      makeEngine(probe, makeAdversary(adv_name, n, seed), 3 * n, seed, true);
  for (Round r = 1; r <= 3 * n; ++r) {
    probe_engine.step();
  }
  const int diameter = net::dynamicDiameter(probe_engine.topologies(), n);
  ASSERT_GT(diameter, 0) << adv_name;

  CFloodFactory cflood(/*source=*/0, /*token=*/0x5b, /*token_bits=*/8,
                       FloodMode::kDeterministic, /*wait_rounds=*/diameter);
  auto engine = makeEngine(cflood, makeAdversary(adv_name, n, seed),
                           diameter + 1, seed);
  const auto result = engine.run();
  ASSERT_TRUE(result.all_done) << adv_name;
  // Termination = source output round = D: exactly one flooding round.
  EXPECT_EQ(result.done_round[0], diameter);
  // Confirmation is sound: everyone holds the token.
  EXPECT_TRUE(allHoldToken(engine)) << adv_name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, CFloodSweep,
    ::testing::Combine(::testing::Values("static_path", "static_star",
                                         "random_tree", "rotating_star",
                                         "interval"),
                       ::testing::Values(9, 40)));

TEST(CFlood, PessimisticWaitIsAlwaysCorrect) {
  // Unknown D: waiting N-1 rounds is correct on every adversary.
  const NodeId n = 30;
  for (const char* adv_name :
       {"static_path", "random_tree", "shuffle_path", "rotating_star"}) {
    CFloodFactory cflood(0, 1, 2, FloodMode::kDeterministic, n - 1);
    auto engine = makeEngine(cflood, makeAdversary(adv_name, n, 17), n, 17);
    const auto result = engine.run();
    ASSERT_TRUE(result.all_done) << adv_name;
    EXPECT_TRUE(allHoldToken(engine)) << adv_name;
  }
}

TEST(CFlood, OptimisticWaitFailsOnLargeDiameter) {
  // Assuming D <= 3 on a static path of 30 nodes terminates early with an
  // incorrect output — the cost of guessing the diameter wrong.
  const NodeId n = 30;
  CFloodFactory cflood(0, 1, 2, FloodMode::kDeterministic, 3);
  auto engine = makeEngine(cflood, makeAdversary("static_path", n, 1), 4, 1);
  const auto result = engine.run();
  ASSERT_TRUE(result.all_done);
  EXPECT_EQ(result.done_round[0], 3);
  EXPECT_FALSE(allHoldToken(engine));
}

// --- Max-flood: LEADERELECT / CONSENSUS / MAX with known D ---

struct KnownDCase {
  const char* adversary;
  NodeId n;
  int diameter_hint;  // upper bound on realized diameter for the run budget
};

class MaxFloodSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(MaxFloodSweep, LeaderAndConsensusAgreeOnMaxId) {
  const std::string adv_name = GetParam();
  const NodeId n = 32;
  const std::uint64_t seed = 7;
  // Measure realized diameter first.
  FloodFactory probe(0, 1, 2, FloodMode::kDeterministic, 0);
  auto probe_engine =
      makeEngine(probe, makeAdversary(adv_name, n, seed), 3 * n, seed, true);
  for (Round r = 1; r <= 3 * n; ++r) {
    probe_engine.step();
  }
  const int diameter = net::dynamicDiameter(probe_engine.topologies(), n);
  ASSERT_GT(diameter, 0);

  // LEADERELECT.
  LeaderKnownDFactory leader(diameter);
  auto leader_engine =
      makeEngine(leader, makeAdversary(adv_name, n, seed),
                 knownDRounds(diameter, n) + 1, seed);
  const auto leader_result = leader_engine.run();
  ASSERT_TRUE(leader_result.all_done);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(leader_engine.process(v).output(), static_cast<std::uint64_t>(n))
        << adv_name << " node " << v;
  }

  // CONSENSUS: inputs alternate; the max id (n-1) has input (n-1) % 2.
  std::vector<std::uint64_t> inputs;
  for (NodeId v = 0; v < n; ++v) {
    inputs.push_back(static_cast<std::uint64_t>(v) % 2);
  }
  ConsensusKnownDFactory consensus(inputs, diameter);
  auto consensus_engine =
      makeEngine(consensus, makeAdversary(adv_name, n, seed),
                 knownDRounds(diameter, n) + 1, seed);
  const auto consensus_result = consensus_engine.run();
  ASSERT_TRUE(consensus_result.all_done);
  const std::uint64_t expected = static_cast<std::uint64_t>(n - 1) % 2;
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(consensus_engine.process(v).output(), expected) << adv_name;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, MaxFloodSweep,
                         ::testing::Values("static_path", "static_star",
                                           "random_tree", "rotating_star",
                                           "shuffle_path", "interval"));

TEST(MaxFlood, ValidityValueTravelsWithKey) {
  // MAX computation: key = value; everyone learns max value.
  const NodeId n = 20;
  std::vector<std::uint64_t> values;
  for (NodeId v = 0; v < n; ++v) {
    values.push_back(static_cast<std::uint64_t>((v * 7919) % 1000));
  }
  MaxFloodFactory factory(values, /*value_bits=*/16,
                          knownDRounds(/*diameter=*/2, n));
  auto engine = makeEngine(factory, makeAdversary("rotating_star", n, 3),
                           knownDRounds(2, n) + 1, 3);
  engine.run();
  // key is id+1, so the winner is node n-1 and its value must be reported.
  for (NodeId v = 0; v < n; ++v) {
    const auto* p = dynamic_cast<const MaxFloodProcess*>(&engine.process(v));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->bestKey(), static_cast<std::uint64_t>(n));
    EXPECT_EQ(p->bestValue(), values.back());
  }
}

TEST(ConsensusKnownD, RejectsNonBinaryInputs) {
  EXPECT_THROW(ConsensusKnownDFactory({0, 2}, 3), util::CheckError);
}

// --- Counting / estimate-N ---

TEST(MinVector, EstimatorBasics) {
  MinVector mv(8);
  EXPECT_EQ(mv.estimate(), 0.0);  // all infinite
  util::Rng rng(3);
  mv.contribute(rng);
  EXPECT_GT(mv.estimate(), 0.0);
  mv.clear();
  EXPECT_EQ(mv.estimate(), 0.0);
}

TEST(MinVector, MergeOnlyShrinks) {
  MinVector mv(4);
  util::Rng rng(4);
  mv.contribute(rng);
  const double before = mv.coordinate(0);
  mv.merge(0, before + 1.0);
  EXPECT_EQ(mv.coordinate(0), before);
  mv.merge(0, before / 2);
  EXPECT_EQ(mv.coordinate(0), before / 2);
}

TEST(MinVector, EstimateAccuracyStatistical) {
  // k = 256: relative error should be well inside 20% for m = 100
  // participants, on average over seeds.
  const int k = 256;
  const int m = 100;
  util::Summary estimates;
  for (int trial = 0; trial < 20; ++trial) {
    MinVector mv(k);
    for (int node = 0; node < m; ++node) {
      util::Rng rng(util::privateSeed(static_cast<std::uint64_t>(trial), node));
      mv.contribute(rng);
    }
    estimates.add(mv.estimate());
  }
  EXPECT_NEAR(estimates.mean(), m, 0.15 * m);
}

TEST(MajorityThreshold, SoundAndCompleteAtBothEstimateExtremes) {
  // For all valid N' and a (1 ± c)-accurate estimator, the threshold must
  // (a) only fire when the true count > N/2, (b) fire when all N nodes
  // participate.
  const double n_true = 900;
  for (const double c : {0.05, 0.1, 0.2, 0.3}) {
    for (const double n_prime :
         {n_true * (1 - 0.999 * (1.0 / 3.0 - c)), n_true,
          n_true * (1 + 0.999 * (1.0 / 3.0 - c))}) {
      ASSERT_TRUE(validEstimate(n_prime, n_true, c));
      const double tau = majorityThreshold(n_prime, c);
      // Soundness: even a (1+c)-inflated estimate of exactly N/2 nodes must
      // not reach tau.
      EXPECT_GT(tau, (1 + c) * n_true / 2 * (1 - 1e-9))
          << "c=" << c << " N'=" << n_prime;
      // Completeness: a (1-c)-deflated estimate of all N nodes must reach tau.
      EXPECT_LE(tau, (1 - c) * n_true * (1 + 1e-9))
          << "c=" << c << " N'=" << n_prime;
    }
  }
}

TEST(CoordCount, ScalesInverseSquare) {
  EXPECT_GT(coordCountFor(0.05), coordCountFor(0.1));
  EXPECT_GT(coordCountFor(0.1), coordCountFor(0.3));
  EXPECT_LE(coordCountFor(0.01), 1024);
  EXPECT_GE(coordCountFor(1.0 / 3.0), 16);
}

class CountingSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(CountingSweep, EstimatesNWithKnownDiameter) {
  const std::string adv_name = GetParam();
  const NodeId n = 64;
  const int k = 128;
  const int diameter_cap = adv_name == "static_path" ? n : 8;
  const Round rounds = countingRounds(k, diameter_cap, n, 2);
  CountingFactory factory(k, rounds, /*master_seed=*/11);
  auto engine =
      makeEngine(factory, makeAdversary(adv_name, n, 11), rounds + 1, 11);
  const auto result = engine.run();
  ASSERT_TRUE(result.all_done) << adv_name;
  for (NodeId v = 0; v < n; v += 13) {
    const auto* p = dynamic_cast<const CountingProcess*>(&engine.process(v));
    ASSERT_NE(p, nullptr);
    EXPECT_NEAR(p->estimate(), n, 0.35 * n) << adv_name << " node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Zoo, CountingSweep,
                         ::testing::Values("static_star", "random_tree",
                                           "rotating_star"));

TEST(Counting, UnderCountsWhenRoundsTooFew) {
  // HEAR-FROM-N with too small a budget: estimates only fall short, never
  // overshoot beyond statistical error — the one-sided behaviour the §7
  // protocol relies on.
  const NodeId n = 64;
  const int k = 128;
  CountingFactory factory(k, /*total_rounds=*/k, 13);
  auto engine = makeEngine(factory, makeAdversary("static_path", n, 13), k + 1, 13);
  engine.run();
  // The path's middle node has only seen a small neighbourhood.
  const auto* p = dynamic_cast<const CountingProcess*>(&engine.process(n / 2));
  ASSERT_NE(p, nullptr);
  EXPECT_LT(p->estimate(), n * 0.8);
}

}  // namespace
}  // namespace dynet::proto
