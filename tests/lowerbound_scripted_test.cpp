// Deterministic, pattern-scripted coverage of Lemma 3/4 and the two-party
// simulation.  The random-babbler tests cover the conditional adversary
// rules probabilistically; here every node follows a fixed send/receive
// pattern so each branch of rules 3/4 (middle receiving vs sending in
// round t+1) is exercised by construction, for every feasible label pair.
#include <gtest/gtest.h>

#include <memory>

#include "lowerbound/composition.h"
#include "lowerbound/reduction.h"
#include "lowerbound/spoiled.h"
#include "sim/engine.h"

namespace dynet::lb {
namespace {

/// Scripted process: send/receive by a deterministic pattern of
/// (node, round); when sending, the payload mixes full receive history so
/// that any delivery divergence becomes visible downstream.
class PatternProcess : public sim::Process {
 public:
  enum class Pattern {
    kAlwaysReceive,
    kAlwaysSend,
    kParityNodeRound,   // send iff (node + round) is even
    kRoundBursts,       // send in rounds 2, 3 mod 4
  };

  PatternProcess(sim::NodeId node, Pattern pattern)
      : node_(node),
        pattern_(pattern),
        digest_(util::mix64(static_cast<std::uint64_t>(node) + 1)) {}

  sim::Action onRound(sim::Round round, util::CoinStream& /*coins*/) override {
    bool send = false;
    switch (pattern_) {
      case Pattern::kAlwaysReceive:
        send = false;
        break;
      case Pattern::kAlwaysSend:
        send = true;
        break;
      case Pattern::kParityNodeRound:
        send = ((node_ + round) % 2) == 0;
        break;
      case Pattern::kRoundBursts:
        send = (round % 4) == 2 || (round % 4) == 3;
        break;
    }
    sim::Action action;
    if (send) {
      action.send = true;
      action.msg =
          sim::MessageBuilder().put(digest_ & 0xffffff, 24).build();
      digest_ = util::hashCombine(digest_, 0x9e3779b97f4a7c15ULL);
    }
    return action;
  }

  void onDeliver(sim::Round /*round*/, bool /*sent*/,
                 std::span<const sim::Message> received) override {
    for (const sim::Message& m : received) {
      digest_ = util::hashCombine(digest_, m.digest());
    }
  }

  std::uint64_t stateDigest() const override { return digest_; }

 private:
  sim::NodeId node_;
  Pattern pattern_;
  std::uint64_t digest_;
};

class PatternFactory : public sim::ProcessFactory {
 public:
  explicit PatternFactory(PatternProcess::Pattern pattern) : pattern_(pattern) {}

  std::unique_ptr<sim::Process> create(sim::NodeId node,
                                       sim::NodeId /*num_nodes*/) const override {
    return std::make_unique<PatternProcess>(node, pattern_);
  }

 private:
  PatternProcess::Pattern pattern_;
};

/// Instance containing, in x/y, every feasible label pair for the given q
/// (n = 2q indices: ascending, descending, and the two fixed points,
/// padded by (q-1,q-1)).
cc::Instance allPairsInstance(int q) {
  cc::Instance inst;
  inst.q = q;
  for (int x = 0; x + 1 < q; ++x) {
    inst.x.push_back(x);
    inst.y.push_back(x + 1);
  }
  for (int x = 1; x < q; ++x) {
    inst.x.push_back(x);
    inst.y.push_back(x - 1);
  }
  inst.x.push_back(0);
  inst.y.push_back(0);
  inst.x.push_back(q - 1);
  inst.y.push_back(q - 1);
  inst.n = static_cast<int>(inst.x.size());
  DYNET_CHECK(cc::cyclePromiseHolds(inst)) << "constructed instance invalid";
  return inst;
}

class PatternSweep
    : public ::testing::TestWithParam<std::tuple<int, PatternProcess::Pattern>> {
};

TEST_P(PatternSweep, LemmaHoldsForEveryLabelPairUnderEveryPattern) {
  const auto [q, pattern] = GetParam();
  const cc::Instance inst = allPairsInstance(q);
  const CFloodNetwork network(inst);
  const PatternFactory factory(pattern);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (sim::NodeId v = 0; v < network.numNodes(); ++v) {
    ps.push_back(factory.create(v, network.numNodes()));
  }
  sim::EngineConfig config;
  config.max_rounds = network.horizon();
  config.record_topologies = true;
  config.record_actions = true;
  config.stop_when_all_done = false;
  sim::Engine engine(std::move(ps), network.referenceAdversary(), config, 1);
  engine.run();
  for (const Party party : {Party::kAlice, Party::kBob}) {
    const auto violations = checkNeighborhoodLemma(
        network.numNodes(), network.spoiledFrom(party),
        [&network, party](sim::Round r) { return network.partyEdges(party, r); },
        engine.topologies(), engine.actionTrace(),
        network.forwardedNodes(party == Party::kAlice ? Party::kBob
                                                      : Party::kAlice),
        network.horizon());
    EXPECT_TRUE(violations.empty())
        << "q=" << q << " first violation: "
        << (violations.empty() ? "" : violations[0].what);
  }
}

TEST_P(PatternSweep, TwoPartySimulationExactForEveryPattern) {
  const auto [q, pattern] = GetParam();
  const cc::Instance inst = allPairsInstance(q);
  const PatternFactory factory(pattern);
  const ReductionResult result = runCFloodReduction(inst, factory, 77);
  EXPECT_TRUE(result.simulation_consistent) << "q=" << q;
  EXPECT_GT(result.actions_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllBranches, PatternSweep,
    ::testing::Combine(
        ::testing::Values(5, 9, 13),
        ::testing::Values(PatternProcess::Pattern::kAlwaysReceive,
                          PatternProcess::Pattern::kAlwaysSend,
                          PatternProcess::Pattern::kParityNodeRound,
                          PatternProcess::Pattern::kRoundBursts)));

TEST(PatternSweepConsensus, LemmaAndSimulationHoldOnConsensusComposition) {
  // Same deterministic coverage on the Λ+Υ composition.
  for (const int q : {5, 13}) {
    const cc::Instance inst = allPairsInstance(q);
    const ConsensusNetwork network(inst);
    for (const auto pattern : {PatternProcess::Pattern::kParityNodeRound,
                               PatternProcess::Pattern::kRoundBursts}) {
      const PatternFactory factory(pattern);
      const ReductionResult result =
          runConsensusReduction(inst, factory, 31);
      EXPECT_TRUE(result.simulation_consistent) << "q=" << q;
    }
  }
}

TEST(LargeScale, ReductionStaysExactAtThousandsOfNodes) {
  // One big instance (N = 1450 nodes) to catch any size-dependent drift in
  // the machinery.
  util::Rng rng(12);
  const cc::Instance inst = cc::randomInstance(2, 241, rng, 0);
  const PatternFactory factory(PatternProcess::Pattern::kParityNodeRound);
  const ReductionResult result = runCFloodReduction(inst, factory, 8);
  EXPECT_EQ(result.num_nodes, 1450);
  EXPECT_TRUE(result.simulation_consistent);
  EXPECT_GT(result.actions_checked, 100000u);
}

TEST(PatternCoverage, ConditionalRuleBranchesBothFire) {
  // Sanity that the sweep genuinely hits both branches of rules 3/4: under
  // kParityNodeRound some middles send and some receive in any round t+1.
  const cc::Instance inst = allPairsInstance(9);
  const CFloodNetwork network(inst);
  const PatternFactory factory(PatternProcess::Pattern::kParityNodeRound);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (sim::NodeId v = 0; v < network.numNodes(); ++v) {
    ps.push_back(factory.create(v, network.numNodes()));
  }
  sim::EngineConfig config;
  config.max_rounds = network.horizon();
  config.record_actions = true;
  config.stop_when_all_done = false;
  sim::Engine engine(std::move(ps), network.referenceAdversary(), config, 1);
  engine.run();
  int sends = 0;
  int receives = 0;
  const auto& gamma = network.gamma();
  for (sim::Round r = 1; r <= network.horizon(); ++r) {
    for (int i = 0; i < gamma.groups(); ++i) {
      for (int j = 0; j < gamma.chainsPerGroup(); ++j) {
        const auto& a = engine.actionTrace()[static_cast<std::size_t>(r - 1)]
            [static_cast<std::size_t>(gamma.mid(i, j))];
        (a.send ? sends : receives) += 1;
      }
    }
  }
  EXPECT_GT(sends, 0);
  EXPECT_GT(receives, 0);
}

}  // namespace
}  // namespace dynet::lb
