// Fault-injection subsystem tests: FaultPlan schedules, engine integration
// (crash-stop, restart, drop, corruption), checksum framing, the all-zero
// regression guarantee, the relaxed live-subgraph connectivity invariant,
// and the hardened protocols (ResilientFlood, robust leader election).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "adversary/churn_adversaries.h"
#include "adversary/static_adversaries.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "net/graph.h"
#include "protocols/flood.h"
#include "protocols/framing.h"
#include "protocols/leader_unknown_d.h"
#include "protocols/resilient_flood.h"
#include "protocols/robust_leader.h"
#include "sim/engine.h"
#include "sim/runner.h"
#include "sim/trace.h"
#include "util/check.h"

namespace dynet {
namespace {

using faults::FaultConfig;
using faults::FaultInjector;
using faults::FaultPlan;

// ---------------------------------------------------------------------------
// Test processes.

/// Sends a fixed payload every round; never done.
class AlwaysSend : public sim::Process {
 public:
  AlwaysSend(std::uint64_t value, int bits) : value_(value), bits_(bits) {}

  sim::Action onRound(sim::Round, util::CoinStream&) override {
    sim::Action a;
    a.send = true;
    a.msg = sim::MessageBuilder().put(value_, bits_).build();
    return a;
  }
  void onDeliver(sim::Round, bool, std::span<const sim::Message>) override {}

 private:
  std::uint64_t value_;
  int bits_;
};

/// Listens every round and records everything delivered.
class Recorder : public sim::Process {
 public:
  sim::Action onRound(sim::Round, util::CoinStream&) override { return {}; }
  void onDeliver(sim::Round, bool,
                 std::span<const sim::Message> received) override {
    for (const sim::Message& m : received) {
      received_.push_back(m);
    }
  }

  const std::vector<sim::Message>& received() const { return received_; }

 private:
  std::vector<sim::Message> received_;
};

/// Counts its onRound invocations; never sends, never done.
class RoundCounter : public sim::Process {
 public:
  sim::Action onRound(sim::Round, util::CoinStream&) override {
    ++rounds_seen_;
    return {};
  }
  void onDeliver(sim::Round, bool, std::span<const sim::Message>) override {}

  int roundsSeen() const { return rounds_seen_; }

 private:
  int rounds_seen_ = 0;
};

/// Serves a fixed graph without StaticAdversary's connectivity assertion —
/// for exercising the engine's own (relaxed) invariant checks.
class RawStaticAdversary : public sim::Adversary {
 public:
  explicit RawStaticAdversary(net::GraphPtr graph) : graph_(std::move(graph)) {}

  net::GraphPtr topology(sim::Round, const sim::RoundObservation&) override {
    return graph_;
  }
  sim::NodeId numNodes() const override { return graph_->numNodes(); }

 private:
  net::GraphPtr graph_;
};

class RoundCounterFactory : public sim::ProcessFactory {
 public:
  std::unique_ptr<sim::Process> create(sim::NodeId, sim::NodeId) const override {
    return std::make_unique<RoundCounter>();
  }
};

sim::EngineConfig runForever(sim::Round max_rounds) {
  sim::EngineConfig config;
  config.max_rounds = max_rounds;
  config.stop_when_all_done = false;
  return config;
}

std::shared_ptr<const FaultInjector> injectorFor(
    sim::NodeId n, const FaultConfig& config, std::uint64_t seed,
    const sim::ProcessFactory* factory = nullptr) {
  return std::make_shared<const FaultInjector>(FaultPlan(n, config, seed),
                                               factory);
}

// ---------------------------------------------------------------------------
// FaultPlan.

TEST(FaultPlan, DefaultConfigIsZero) {
  FaultPlan plan(16, FaultConfig{}, 42);
  EXPECT_TRUE(plan.zero());
  EXPECT_FALSE(plan.hasCrashes());
  EXPECT_FALSE(plan.hasRestarts());
  for (sim::NodeId v = 0; v < 16; ++v) {
    EXPECT_EQ(plan.crashRound(v), 0);
    EXPECT_FALSE(plan.isCrashed(v, 1000));
    for (sim::NodeId u = 0; u < 16; ++u) {
      EXPECT_EQ(plan.deliveryFate(u, v, 7), FaultPlan::Fate::kDeliver);
    }
  }
}

TEST(FaultPlan, SameSeedSameSchedule) {
  FaultConfig config;
  config.crash_fraction = 0.25;
  config.restart = true;
  config.drop_prob = 0.2;
  config.corrupt_prob = 0.1;
  FaultPlan a(32, config, 7), b(32, config, 7), c(32, config, 8);
  bool any_difference_vs_c = false;
  for (sim::NodeId v = 0; v < 32; ++v) {
    EXPECT_EQ(a.crashRound(v), b.crashRound(v));
    EXPECT_EQ(a.restartRound(v), b.restartRound(v));
    for (sim::Round r = 1; r <= 16; ++r) {
      EXPECT_EQ(a.deliveryFate(v, (v + 1) % 32, r),
                b.deliveryFate(v, (v + 1) % 32, r));
      if (a.deliveryFate(v, (v + 1) % 32, r) !=
          c.deliveryFate(v, (v + 1) % 32, r)) {
        any_difference_vs_c = true;
      }
    }
  }
  EXPECT_TRUE(any_difference_vs_c) << "distinct seeds produced identical fates";
}

TEST(FaultPlan, CrashCountAndWindows) {
  FaultConfig config;
  config.crash_fraction = 0.25;
  config.crash_window = 10;
  config.restart = true;
  config.restart_downtime = 5;
  FaultPlan plan(40, config, 3);
  int crashed = 0;
  for (sim::NodeId v = 0; v < 40; ++v) {
    const sim::Round crash = plan.crashRound(v);
    if (crash == 0) {
      EXPECT_EQ(plan.restartRound(v), 0);
      continue;
    }
    ++crashed;
    EXPECT_GE(crash, 1);
    EXPECT_LE(crash, 10);
    const sim::Round restart = plan.restartRound(v);
    EXPECT_GT(restart, crash);
    EXPECT_LE(restart, crash + 5);
    EXPECT_FALSE(plan.isCrashed(v, crash - 1));
    EXPECT_TRUE(plan.isCrashed(v, crash));
    EXPECT_TRUE(plan.isCrashed(v, restart - 1));
    EXPECT_FALSE(plan.isCrashed(v, restart));
    EXPECT_TRUE(plan.restartsAt(v, restart));
  }
  EXPECT_EQ(crashed, 10);  // floor(0.25 * 40)
  EXPECT_TRUE(plan.hasCrashes());
  EXPECT_TRUE(plan.hasRestarts());
}

TEST(FaultPlan, ScriptedCrashAndRestart) {
  FaultConfig config;
  config.scripted_crashes = {{3, 5}};
  config.scripted_restarts = {{3, 9}};
  FaultPlan plan(8, config, 1);
  EXPECT_FALSE(plan.zero());
  EXPECT_TRUE(plan.hasCrashes());
  EXPECT_TRUE(plan.hasRestarts());
  EXPECT_EQ(plan.crashRound(3), 5);
  EXPECT_EQ(plan.restartRound(3), 9);
  EXPECT_FALSE(plan.isCrashed(3, 4));
  EXPECT_TRUE(plan.isCrashed(3, 5));
  EXPECT_TRUE(plan.isCrashed(3, 8));
  EXPECT_FALSE(plan.isCrashed(3, 9));
  EXPECT_TRUE(plan.restartsAt(3, 9));
  EXPECT_EQ(plan.crashRound(0), 0);
}

TEST(FaultPlan, ScriptedRestartWithoutCrashRejected) {
  FaultConfig config;
  config.scripted_restarts = {{2, 9}};
  EXPECT_THROW(FaultPlan(8, config, 1), util::CheckError);
}

TEST(FaultPlan, DropRateMatchesProbability) {
  FaultConfig config;
  config.drop_prob = 0.3;
  FaultPlan plan(64, config, 11);
  int dropped = 0, total = 0;
  for (sim::NodeId u = 0; u < 64; ++u) {
    for (sim::NodeId v = 0; v < 64; ++v) {
      for (sim::Round r = 1; r <= 4; ++r) {
        ++total;
        if (plan.deliveryFate(u, v, r) == FaultPlan::Fate::kDrop) {
          ++dropped;
        }
      }
    }
  }
  const double rate = static_cast<double>(dropped) / total;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(FaultPlan, CorruptBitIndexInRange) {
  FaultConfig config;
  config.corrupt_prob = 1.0;
  FaultPlan plan(4, config, 5);
  for (sim::Round r = 1; r <= 50; ++r) {
    const int bit = plan.corruptBitIndex(0, 1, r, 17);
    EXPECT_GE(bit, 0);
    EXPECT_LT(bit, 17);
  }
}

// ---------------------------------------------------------------------------
// connectedOn + Message::withBitFlipped.

TEST(ConnectedOn, LiveSubgraph) {
  auto path = net::makePath(3);
  std::vector<char> all = {1, 1, 1};
  EXPECT_TRUE(net::connectedOn(*path, all));
  std::vector<char> mid_dead = {1, 0, 1};
  EXPECT_FALSE(net::connectedOn(*path, mid_dead));  // 0 and 2 severed
  auto clique = net::makeClique(3);
  EXPECT_TRUE(net::connectedOn(*clique, mid_dead));
  std::vector<char> one_live = {0, 0, 1};
  EXPECT_TRUE(net::connectedOn(*path, one_live));  // vacuous
  std::vector<char> none_live = {0, 0, 0};
  EXPECT_TRUE(net::connectedOn(*path, none_live));
}

TEST(MessageFaults, WithBitFlippedTogglesExactlyOneBit) {
  const sim::Message msg = sim::MessageBuilder().put(0xABCDu, 16).build();
  for (int bit = 0; bit < 16; ++bit) {
    const sim::Message flipped = msg.withBitFlipped(bit);
    EXPECT_NE(flipped, msg);
    EXPECT_EQ(flipped.bitSize(), msg.bitSize());
    EXPECT_EQ(flipped.withBitFlipped(bit), msg);  // involution
  }
  EXPECT_THROW(msg.withBitFlipped(16), util::CheckError);
  EXPECT_THROW(msg.withBitFlipped(-1), util::CheckError);
}

// ---------------------------------------------------------------------------
// Framing.

TEST(Framing, RoundTrip) {
  const sim::Message payload = sim::MessageBuilder().put(0x2F1u, 12).build();
  const sim::Message framed = proto::frameWithChecksum(payload);
  EXPECT_EQ(framed.bitSize(), payload.bitSize() + proto::kChecksumBits);
  sim::Message stripped;
  ASSERT_TRUE(proto::verifyAndStrip(framed, stripped));
  EXPECT_EQ(stripped, payload);
}

TEST(Framing, EveryFlippedBitIsDetected) {
  const sim::Message payload =
      sim::MessageBuilder().put(0xDEADBEEFu, 32).build();
  const sim::Message framed = proto::frameWithChecksum(payload);
  for (int bit = 0; bit < framed.bitSize(); ++bit) {
    sim::Message stripped;
    EXPECT_FALSE(proto::verifyAndStrip(framed.withBitFlipped(bit), stripped))
        << "flipped bit " << bit << " slipped through";
  }
}

TEST(Framing, UndersizedFrameRejected) {
  const sim::Message tiny = sim::MessageBuilder().put(1, 4).build();
  sim::Message stripped;
  EXPECT_FALSE(proto::verifyAndStrip(tiny, stripped));
  sim::Message empty;
  EXPECT_FALSE(proto::verifyAndStrip(empty, stripped));
}

// ---------------------------------------------------------------------------
// Engine integration.

TEST(EngineFaults, CrashStopNodeGoesSilentAndIsExemptFromAllDone) {
  const sim::NodeId n = 4;
  std::vector<std::unique_ptr<sim::Process>> processes;
  proto::FloodFactory factory(/*source=*/0, /*token=*/0x5, /*token_bits=*/4,
                              proto::FloodMode::kDeterministic,
                              /*halt_round=*/3);
  for (sim::NodeId v = 0; v < n; ++v) {
    processes.push_back(factory.create(v, n));
  }
  auto adversary = std::make_unique<adv::StaticAdversary>(net::makeClique(n));
  sim::EngineConfig config;
  config.max_rounds = 3;
  sim::Engine engine(std::move(processes), std::move(adversary), config, 9);

  FaultConfig fc;
  fc.scripted_crashes = {{3, 1}};
  engine.setFaultInjector(injectorFor(n, fc, 9));

  const sim::RunResult result = engine.run();
  EXPECT_EQ(result.crashes, 1u);
  EXPECT_EQ(result.restarts, 0u);
  // Nodes 1 and 2 got the token on the clique; crashed node 3 never did.
  for (sim::NodeId v = 0; v < 3; ++v) {
    EXPECT_TRUE(static_cast<const proto::FloodProcess&>(engine.process(v))
                    .hasToken());
  }
  EXPECT_FALSE(static_cast<const proto::FloodProcess&>(engine.process(3))
                   .hasToken());
  // The crashed node never reached done(), yet the run counts as all-done.
  EXPECT_TRUE(result.all_done);
}

TEST(EngineFaults, RestartResetsStateAndCounts) {
  const sim::NodeId n = 3;
  RoundCounterFactory factory;
  std::vector<std::unique_ptr<sim::Process>> processes;
  for (sim::NodeId v = 0; v < n; ++v) {
    processes.push_back(factory.create(v, n));
  }
  auto adversary = std::make_unique<adv::StaticAdversary>(net::makeClique(n));
  sim::Engine engine(std::move(processes), std::move(adversary),
                     runForever(10), 1);

  FaultConfig fc;
  fc.scripted_crashes = {{1, 3}};
  fc.scripted_restarts = {{1, 6}};
  engine.setFaultInjector(injectorFor(n, fc, 1, &factory));

  const sim::RunResult result = engine.run();
  EXPECT_EQ(result.crashes, 1u);
  EXPECT_EQ(result.restarts, 1u);
  EXPECT_EQ(result.rounds_executed, 10);
  // Node 1 was down rounds 3-5 and came back with FRESH state at round 6:
  // the replacement process saw only rounds 6..10.
  EXPECT_EQ(
      static_cast<const RoundCounter&>(engine.process(0)).roundsSeen(), 10);
  EXPECT_EQ(
      static_cast<const RoundCounter&>(engine.process(1)).roundsSeen(), 5);
  EXPECT_EQ(
      static_cast<const RoundCounter&>(engine.process(2)).roundsSeen(), 10);
}

TEST(EngineFaults, DropsAreCountedAndWithheld) {
  std::vector<std::unique_ptr<sim::Process>> processes;
  processes.push_back(std::make_unique<AlwaysSend>(0x3u, 8));
  processes.push_back(std::make_unique<Recorder>());
  auto adversary = std::make_unique<adv::StaticAdversary>(net::makePath(2));
  sim::Engine engine(std::move(processes), std::move(adversary), runForever(5),
                     2);
  FaultConfig fc;
  fc.drop_prob = 1.0;
  engine.setFaultInjector(injectorFor(2, fc, 2));

  const sim::RunResult result = engine.run();
  EXPECT_EQ(result.messages_dropped, 5u);
  EXPECT_EQ(result.messages_corrupted, 0u);
  EXPECT_EQ(result.messages_sent, 5u);  // sends still happened and count
  EXPECT_TRUE(
      static_cast<const Recorder&>(engine.process(1)).received().empty());
}

TEST(EngineFaults, CorruptionDeliversMangledPayload) {
  const sim::Message original = sim::MessageBuilder().put(0xABCu, 16).build();
  std::vector<std::unique_ptr<sim::Process>> processes;
  processes.push_back(std::make_unique<AlwaysSend>(0xABCu, 16));
  processes.push_back(std::make_unique<Recorder>());
  auto adversary = std::make_unique<adv::StaticAdversary>(net::makePath(2));
  sim::Engine engine(std::move(processes), std::move(adversary), runForever(6),
                     3);
  FaultConfig fc;
  fc.corrupt_prob = 1.0;
  fc.deliver_corrupted = true;
  engine.setFaultInjector(injectorFor(2, fc, 3));

  const sim::RunResult result = engine.run();
  EXPECT_EQ(result.messages_corrupted, 6u);
  EXPECT_EQ(result.messages_dropped, 0u);
  const auto& received =
      static_cast<const Recorder&>(engine.process(1)).received();
  ASSERT_EQ(received.size(), 6u);
  for (const sim::Message& m : received) {
    EXPECT_NE(m, original) << "corrupted delivery arrived unmangled";
    EXPECT_EQ(m.bitSize(), original.bitSize());
    // Exactly one flipped bit: flipping it back must restore the original.
    bool restorable = false;
    for (int bit = 0; bit < m.bitSize(); ++bit) {
      if (m.withBitFlipped(bit) == original) {
        restorable = true;
        break;
      }
    }
    EXPECT_TRUE(restorable);
  }
}

TEST(EngineFaults, CorruptionDetectAndDropMode) {
  std::vector<std::unique_ptr<sim::Process>> processes;
  processes.push_back(std::make_unique<AlwaysSend>(0xABCu, 16));
  processes.push_back(std::make_unique<Recorder>());
  auto adversary = std::make_unique<adv::StaticAdversary>(net::makePath(2));
  sim::Engine engine(std::move(processes), std::move(adversary), runForever(6),
                     3);
  FaultConfig fc;
  fc.corrupt_prob = 1.0;
  fc.deliver_corrupted = false;  // link-layer CRC drops them
  engine.setFaultInjector(injectorFor(2, fc, 3));

  const sim::RunResult result = engine.run();
  EXPECT_EQ(result.messages_corrupted, 6u);
  EXPECT_EQ(result.messages_dropped, 0u);
  EXPECT_TRUE(
      static_cast<const Recorder&>(engine.process(1)).received().empty());
}

TEST(EngineFaults, FramedProcessShieldsInnerFromCorruption) {
  std::vector<std::unique_ptr<sim::Process>> processes;
  processes.push_back(std::make_unique<proto::FramedProcess>(
      std::make_unique<AlwaysSend>(0x7Eu, 8)));
  processes.push_back(std::make_unique<proto::FramedProcess>(
      std::make_unique<Recorder>()));
  auto adversary = std::make_unique<adv::StaticAdversary>(net::makePath(2));
  sim::Engine engine(std::move(processes), std::move(adversary), runForever(6),
                     4);
  FaultConfig fc;
  fc.corrupt_prob = 1.0;
  fc.deliver_corrupted = true;  // mangled frames reach the receiver
  engine.setFaultInjector(injectorFor(2, fc, 4));

  engine.run();
  const auto& framed =
      static_cast<const proto::FramedProcess&>(engine.process(1));
  EXPECT_EQ(framed.framesRejected(), 6);
  EXPECT_TRUE(static_cast<const Recorder&>(framed.inner()).received().empty());
}

// ---------------------------------------------------------------------------
// All-zero plan regression: attaching a zero-fault injector must reproduce
// the clean engine byte for byte (an ISSUE acceptance criterion).

void expectIdenticalRuns(const sim::RunResult& clean,
                         const sim::RunResult& zero_plan) {
  EXPECT_EQ(clean.rounds_executed, zero_plan.rounds_executed);
  EXPECT_EQ(clean.all_done, zero_plan.all_done);
  EXPECT_EQ(clean.all_done_round, zero_plan.all_done_round);
  EXPECT_EQ(clean.done_round, zero_plan.done_round);
  EXPECT_EQ(clean.messages_sent, zero_plan.messages_sent);
  EXPECT_EQ(clean.bits_sent, zero_plan.bits_sent);
  EXPECT_EQ(clean.bits_per_node, zero_plan.bits_per_node);
  EXPECT_EQ(zero_plan.crashes, 0u);
  EXPECT_EQ(zero_plan.restarts, 0u);
  EXPECT_EQ(zero_plan.messages_dropped, 0u);
  EXPECT_EQ(zero_plan.messages_corrupted, 0u);
}

TEST(ZeroPlanRegression, RandomizedFloodIsByteIdentical) {
  const sim::NodeId n = 16;
  const std::uint64_t seed = 77;
  proto::FloodFactory factory(0, 0x9, 4, proto::FloodMode::kRandomized,
                              /*halt_round=*/40);
  auto build = [&](bool with_injector) {
    std::vector<std::unique_ptr<sim::Process>> processes;
    for (sim::NodeId v = 0; v < n; ++v) {
      processes.push_back(factory.create(v, n));
    }
    auto adversary =
        std::make_unique<adv::RandomGraphAdversary>(n, 0.15, /*seed=*/5);
    sim::EngineConfig config;
    config.max_rounds = 60;
    auto engine = std::make_unique<sim::Engine>(
        std::move(processes), std::move(adversary), config, seed);
    if (with_injector) {
      engine->setFaultInjector(injectorFor(n, FaultConfig{}, 123));
    }
    return engine;
  };
  auto clean = build(false);
  auto zero = build(true);
  expectIdenticalRuns(clean->run(), zero->run());
  for (sim::NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(clean->process(v).stateDigest(), zero->process(v).stateDigest());
  }
}

TEST(ZeroPlanRegression, LeaderElectionIsByteIdentical) {
  const sim::NodeId n = 12;
  const std::uint64_t seed = 31;
  proto::LeaderConfig config;
  config.n_estimate = n;
  proto::LeaderElectFactory factory(config, /*seed=*/99);
  auto build = [&](bool with_injector) {
    std::vector<std::unique_ptr<sim::Process>> processes;
    for (sim::NodeId v = 0; v < n; ++v) {
      processes.push_back(factory.create(v, n));
    }
    auto adversary =
        std::make_unique<adv::RandomGraphAdversary>(n, 0.3, /*seed=*/6);
    sim::EngineConfig engine_config;
    engine_config.max_rounds = 30000;
    auto engine = std::make_unique<sim::Engine>(
        std::move(processes), std::move(adversary), engine_config, seed);
    if (with_injector) {
      engine->setFaultInjector(injectorFor(n, FaultConfig{}, 123));
    }
    return engine;
  };
  auto clean = build(false);
  auto zero = build(true);
  const sim::RunResult clean_result = clean->run();
  expectIdenticalRuns(clean_result, zero->run());
  EXPECT_TRUE(clean_result.all_done);
  for (sim::NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(clean->process(v).stateDigest(), zero->process(v).stateDigest());
  }
}

// A node restarted mid-run must behave byte-identically on the arena
// delivery + incremental-topology fast path and on the legacy
// (vector-copy, full-rebuild) path: restart resets process state and
// replays deliveries through whichever delivery buffers are active, which
// is exactly where the two paths could drift.  Run the full flag matrix —
// the same grid the fuzz-diff harness sweeps, pinned here on a scripted
// restart so the coverage does not depend on the fuzzer's dice.
TEST(ArenaPathRegression, RestartMidRunMatchesLegacyPathExactly) {
  const sim::NodeId n = 10;
  const std::uint64_t seed = 2026;
  proto::FloodFactory factory(0, 0x33, 6, proto::FloodMode::kRandomized,
                              /*halt_round=*/0);
  FaultConfig fc;
  fc.scripted_crashes = {{4, 3}, {7, 5}};
  fc.scripted_restarts = {{4, 7}, {7, 9}};
  auto run = [&](bool arena, bool deltas) {
    std::vector<std::unique_ptr<sim::Process>> processes;
    for (sim::NodeId v = 0; v < n; ++v) {
      processes.push_back(factory.create(v, n));
    }
    // Dense random graphs: the live subgraph stays connected through both
    // crash windows (seed-pinned, so this holds deterministically).
    auto adversary = std::make_unique<adv::RandomGraphAdversary>(n, 0.5, 11);
    sim::EngineConfig config;
    config.max_rounds = 20;
    config.stop_when_all_done = false;
    config.record_actions = true;
    config.record_topologies = true;
    config.arena_delivery = arena;
    config.topology_deltas = deltas;
    auto engine = std::make_unique<sim::Engine>(
        std::move(processes), std::move(adversary), config, seed);
    engine->setFaultInjector(injectorFor(n, fc, 55, &factory));
    engine->run();
    return engine;
  };
  const auto reference = run(false, false);  // legacy everything
  const sim::RunResult& want = reference->result();
  EXPECT_EQ(want.crashes, 2u);
  EXPECT_EQ(want.restarts, 2u);
  std::ostringstream want_trace;
  sim::writeTrace(want_trace, sim::traceFromEngine(*reference));
  for (const auto& [arena, deltas] :
       {std::pair{true, true}, {true, false}, {false, true}}) {
    const auto engine = run(arena, deltas);
    const sim::RunResult& got = engine->result();
    EXPECT_EQ(got.rounds_executed, want.rounds_executed);
    EXPECT_EQ(got.done_round, want.done_round);
    EXPECT_EQ(got.messages_sent, want.messages_sent);
    EXPECT_EQ(got.bits_sent, want.bits_sent);
    EXPECT_EQ(got.bits_per_node, want.bits_per_node);
    EXPECT_EQ(got.bits_per_round, want.bits_per_round);
    EXPECT_EQ(got.crashes, want.crashes);
    EXPECT_EQ(got.restarts, want.restarts);
    for (sim::NodeId v = 0; v < n; ++v) {
      EXPECT_EQ(engine->process(v).stateDigest(),
                reference->process(v).stateDigest())
          << "node " << v << " arena=" << arena << " deltas=" << deltas;
    }
    std::ostringstream got_trace;
    sim::writeTrace(got_trace, sim::traceFromEngine(*engine));
    EXPECT_EQ(got_trace.str(), want_trace.str())
        << "trace divergence at arena=" << arena << " deltas=" << deltas;
  }
}

// ---------------------------------------------------------------------------
// Relaxed connectivity invariant.

TEST(RelaxedConnectivity, LiveSubgraphMustStayConnected) {
  // Path 0-1-2 with the middle node crashed: live nodes {0,2} are severed,
  // so the relaxed invariant still (rightly) fails.
  std::vector<std::unique_ptr<sim::Process>> processes;
  for (int i = 0; i < 3; ++i) {
    processes.push_back(std::make_unique<RoundCounter>());
  }
  auto adversary = std::make_unique<adv::StaticAdversary>(net::makePath(3));
  sim::Engine engine(std::move(processes), std::move(adversary), runForever(5),
                     1);
  FaultConfig fc;
  fc.scripted_crashes = {{1, 1}};
  engine.setFaultInjector(injectorFor(3, fc, 1));
  EXPECT_THROW(engine.step(), util::CheckError);
}

TEST(RelaxedConnectivity, DisconnectedDeadNodeIsTolerated) {
  // Edge 0-1 plus an isolated node 2: the full graph is disconnected, but
  // once node 2 crashes the live subgraph {0,1} is connected, so the
  // relaxed invariant accepts what the strict one would reject.
  auto graph = std::make_shared<const net::Graph>(
      3, std::vector<net::Edge>{{0, 1}});
  ASSERT_FALSE(graph->connected());
  std::vector<std::unique_ptr<sim::Process>> processes;
  for (int i = 0; i < 3; ++i) {
    processes.push_back(std::make_unique<RoundCounter>());
  }
  auto adversary = std::make_unique<RawStaticAdversary>(graph);
  sim::Engine engine(std::move(processes), std::move(adversary), runForever(5),
                     1);
  FaultConfig fc;
  fc.scripted_crashes = {{2, 1}};
  engine.setFaultInjector(injectorFor(3, fc, 1));
  EXPECT_NO_THROW(engine.run());

  // With relaxation disabled the strict check fires on the same setup.
  std::vector<std::unique_ptr<sim::Process>> processes2;
  for (int i = 0; i < 3; ++i) {
    processes2.push_back(std::make_unique<RoundCounter>());
  }
  auto config = runForever(5);
  config.relax_connectivity_to_live = false;
  sim::Engine strict(std::move(processes2),
                     std::make_unique<RawStaticAdversary>(graph), config, 1);
  strict.setFaultInjector(injectorFor(3, fc, 1));
  EXPECT_THROW(strict.step(), util::CheckError);
}

// ---------------------------------------------------------------------------
// ResilientFlood.

TEST(ResilientFlood, CompletesOnCleanCliqueAndQuiesces) {
  const sim::NodeId n = 8;
  proto::ResilientFloodConfig config;
  proto::ResilientFloodFactory factory(config);
  std::vector<std::unique_ptr<sim::Process>> processes;
  for (sim::NodeId v = 0; v < n; ++v) {
    processes.push_back(factory.create(v, n));
  }
  auto adversary = std::make_unique<adv::StaticAdversary>(net::makeClique(n));
  sim::EngineConfig engine_config;
  engine_config.max_rounds = 500;
  sim::Engine engine(std::move(processes), std::move(adversary), engine_config,
                     21);
  const sim::RunResult result = engine.run();
  EXPECT_TRUE(result.all_done);
  for (sim::NodeId v = 0; v < n; ++v) {
    const auto& p =
        static_cast<const proto::ResilientFloodProcess&>(engine.process(v));
    EXPECT_TRUE(p.hasToken());
    EXPECT_TRUE(p.done());
  }
}

TEST(ResilientFlood, SurvivesTenPercentDropAtN64) {
  const sim::NodeId n = 64;
  const sim::TrialSummary summary =
      sim::runTrials(30, /*base_seed=*/0xF100D, [&](std::uint64_t seed) {
        proto::ResilientFloodConfig config;
        proto::ResilientFloodFactory factory(config);
        std::vector<std::unique_ptr<sim::Process>> processes;
        for (sim::NodeId v = 0; v < n; ++v) {
          processes.push_back(factory.create(v, n));
        }
        auto adversary = std::make_unique<adv::RandomGraphAdversary>(
            n, 0.1, util::hashCombine(seed, 1));
        sim::EngineConfig engine_config;
        engine_config.max_rounds = 3000;
        sim::Engine engine(std::move(processes), std::move(adversary),
                           engine_config, seed);
        FaultConfig fc;
        fc.drop_prob = 0.1;
        engine.setFaultInjector(injectorFor(n, fc, seed));
        const sim::RunResult result = engine.run();
        bool all_tokens = true;
        for (sim::NodeId v = 0; v < n; ++v) {
          all_tokens = all_tokens &&
                       static_cast<const proto::ResilientFloodProcess&>(
                           engine.process(v))
                           .hasToken();
        }
        return std::map<std::string, double>{
            {"success", (result.all_done && all_tokens) ? 1.0 : 0.0},
            {"rounds", static_cast<double>(result.rounds_executed)},
            {"dropped", static_cast<double>(result.messages_dropped)}};
      });
  // ISSUE acceptance: >= 99% trial success at 10% per-delivery drop.
  EXPECT_GE(summary.metrics.at("success").mean(), 0.99);
  EXPECT_GT(summary.metrics.at("dropped").min(), 0.0);
}

TEST(ResilientFlood, SurvivesCrashesDropsAndCorruption) {
  const sim::NodeId n = 32;
  const sim::TrialSummary summary =
      sim::runTrials(10, /*base_seed=*/0xC4A5, [&](std::uint64_t seed) {
        proto::ResilientFloodConfig config;
        proto::ResilientFloodFactory factory(config);
        std::vector<std::unique_ptr<sim::Process>> processes;
        for (sim::NodeId v = 0; v < n; ++v) {
          processes.push_back(factory.create(v, n));
        }
        auto adversary = std::make_unique<adv::RandomGraphAdversary>(
            n, 0.3, util::hashCombine(seed, 1));
        sim::EngineConfig engine_config;
        engine_config.max_rounds = 3000;
        sim::Engine engine(std::move(processes), std::move(adversary),
                           engine_config, seed);
        FaultConfig fc;
        fc.crash_fraction = 0.1;
        fc.crash_window = 10;
        fc.drop_prob = 0.05;
        fc.corrupt_prob = 0.05;
        fc.deliver_corrupted = true;
        FaultPlan plan(n, fc, seed);
        // The source must survive or no trial can spread the token.
        if (plan.crashRound(config.source) != 0) {
          return std::map<std::string, double>{{"success", 1.0},
                                               {"skipped", 1.0}};
        }
        auto injector =
            std::make_shared<const FaultInjector>(std::move(plan), &factory);
        engine.setFaultInjector(injector);
        bool ok = true;
        try {
          const sim::RunResult result = engine.run();
          ok = result.all_done;
          for (sim::NodeId v = 0; v < n; ++v) {
            if (injector->isCrashed(v, engine.currentRound())) {
              continue;  // crashed nodes owe nothing
            }
            ok = ok && static_cast<const proto::ResilientFloodProcess&>(
                           engine.process(v))
                           .hasToken();
          }
        } catch (const util::CheckError&) {
          ok = false;  // live subgraph disconnected: a failed trial
        }
        return std::map<std::string, double>{{"success", ok ? 1.0 : 0.0},
                                             {"skipped", 0.0}};
      });
  EXPECT_GE(summary.metrics.at("success").mean(), 0.9);
}

// ---------------------------------------------------------------------------
// Robust leader election wrapper.

TEST(RobustLeader, FaultFreeTrialSucceeds) {
  proto::LeaderConfig config;
  config.n_estimate = 16;
  const proto::RobustLeaderOutcome outcome = proto::runRobustLeaderElection(
      config, std::make_unique<adv::RandomGraphAdversary>(16, 0.3, 44),
      FaultConfig{}, /*max_rounds=*/40000, /*seed=*/44);
  EXPECT_FALSE(outcome.model_violation);
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.agreement);
  EXPECT_TRUE(outcome.leader_live);
  EXPECT_TRUE(outcome.success);
  EXPECT_EQ(outcome.live_fraction, 1.0);
  EXPECT_EQ(outcome.run.messages_dropped, 0u);
  EXPECT_EQ(outcome.run.crashes, 0u);
}

TEST(RobustLeader, DegradesGracefullyUnderFaults) {
  proto::LeaderConfig config;
  config.n_estimate = 16;
  FaultConfig fc;
  fc.drop_prob = 0.02;
  fc.corrupt_prob = 0.02;
  fc.deliver_corrupted = true;
  fc.crash_fraction = 0.1;
  fc.crash_window = 50;
  int successes = 0;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const proto::RobustLeaderOutcome outcome = proto::runRobustLeaderElection(
        config, std::make_unique<adv::RandomGraphAdversary>(16, 0.3, seed),
        fc, /*max_rounds=*/40000, seed);
    // Never throws, never asserts: outcomes are evaluated, and the flags
    // stay mutually consistent.
    EXPECT_EQ(outcome.success, outcome.completed && outcome.agreement &&
                                   outcome.leader_live);
    if (!outcome.model_violation) {
      EXPECT_LE(outcome.live_fraction, 1.0);
      EXPECT_GT(outcome.run.rounds_executed, 0);
    }
    successes += outcome.success ? 1 : 0;
  }
  SUCCEED() << successes << "/3 faulty trials elected a live leader";
}

}  // namespace
}  // namespace dynet
