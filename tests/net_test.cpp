// Tests for graphs, connectivity, and the causal (dynamic) diameter.
#include <gtest/gtest.h>

#include "net/diameter.h"
#include "net/graph.h"
#include "util/check.h"

namespace dynet::net {
namespace {

TEST(Graph, AdjacencyMatchesEdges) {
  Graph g(5, {{0, 1}, {1, 2}, {1, 3}});
  EXPECT_EQ(g.neighbors(1).size(), 3u);
  EXPECT_EQ(g.neighbors(0).size(), 1u);
  EXPECT_EQ(g.neighbors(4).size(), 0u);
  EXPECT_TRUE(g.hasEdge(0, 1));
  EXPECT_TRUE(g.hasEdge(1, 0));
  EXPECT_FALSE(g.hasEdge(0, 2));
}

TEST(Graph, RejectsBadEdges) {
  EXPECT_THROW(Graph(3, {{0, 3}}), util::CheckError);
  EXPECT_THROW(Graph(3, {{1, 1}}), util::CheckError);
  EXPECT_THROW(Graph(0, {}), util::CheckError);
}

TEST(Graph, Connectivity) {
  EXPECT_TRUE(Graph(1, {}).connected());
  EXPECT_FALSE(Graph(2, {}).connected());
  EXPECT_TRUE(Graph(3, {{0, 1}, {1, 2}}).connected());
  Graph split(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(split.connected());
  EXPECT_EQ(split.componentCount(), 2);
}

TEST(GraphBuilders, Shapes) {
  EXPECT_TRUE(makePath(6)->connected());
  EXPECT_EQ(makePath(6)->numEdges(), 5u);
  EXPECT_TRUE(makeRing(6)->connected());
  EXPECT_EQ(makeRing(6)->numEdges(), 6u);
  EXPECT_TRUE(makeStar(6, 2)->connected());
  EXPECT_EQ(makeStar(6, 2)->neighbors(2).size(), 5u);
  EXPECT_EQ(makeClique(5)->numEdges(), 10u);
  auto torus = makeTorus(4, 5);
  EXPECT_TRUE(torus->connected());
  EXPECT_EQ(torus->neighbors(0).size(), 4u);
}

TEST(GraphBuilders, TorusTwoWideHasNoDuplicateEdges) {
  auto torus = makeTorus(2, 4);
  for (NodeId v = 0; v < torus->numNodes(); ++v) {
    auto ns = torus->neighbors(v);
    std::vector<NodeId> sorted(ns.begin(), ns.end());
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end())
        << "duplicate neighbor at " << v;
  }
}

TopologySeq repeat(GraphPtr g, int rounds) {
  return TopologySeq(static_cast<std::size_t>(rounds), std::move(g));
}

TEST(Diameter, StaticPath) {
  // A static path of n nodes has dynamic diameter n-1.
  for (const NodeId n : {2, 5, 9}) {
    const auto topo = repeat(makePath(n), n + 2);
    EXPECT_EQ(allSourcesEccentricity(topo, 0), n - 1) << "n=" << n;
  }
}

TEST(Diameter, StaticStarIsTwo) {
  const auto topo = repeat(makeStar(8), 5);
  EXPECT_EQ(allSourcesEccentricity(topo, 0), 2);
}

TEST(Diameter, StaticCliqueIsOne) {
  const auto topo = repeat(makeClique(6), 3);
  EXPECT_EQ(allSourcesEccentricity(topo, 0), 1);
}

TEST(Diameter, SingleNodeIsZero) {
  const auto topo = repeat(std::make_shared<Graph>(1, std::vector<Edge>{}), 2);
  EXPECT_EQ(allSourcesEccentricity(topo, 0), 0);
}

TEST(Diameter, HorizonTooShortReturnsMinusOne) {
  const auto topo = repeat(makePath(10), 3);
  EXPECT_EQ(allSourcesEccentricity(topo, 0), -1);
  EXPECT_EQ(causalEccentricity(topo, 0, 0), -1);
}

TEST(Diameter, RotatingStarIsActuallySlow) {
  // Counter-intuitive but correct: a star whose center moves every round
  // has causal diameter Θ(n), NOT 2.  The old center loses its adjacency
  // before it can forward, so influence crawls along the center schedule
  // (or waits for the source's own center turn).
  TopologySeq topo;
  const NodeId n = 9;
  for (int r = 0; r < 3 * n; ++r) {
    topo.push_back(makeStar(n, static_cast<NodeId>(r % n)));
  }
  const int ecc = allSourcesEccentricity(topo, 0);
  EXPECT_GE(ecc, n - 1);
  EXPECT_LE(ecc, n + 1);
}

TEST(Diameter, AnchoredStarStaysConstant) {
  // With a permanent hub the dynamic diameter is 2 despite per-round churn.
  TopologySeq topo;
  const NodeId n = 9;
  for (int r = 0; r < 6; ++r) {
    topo.push_back(makeStar(n, 0));
  }
  EXPECT_EQ(allSourcesEccentricity(topo, 0), 2);
}

TEST(Diameter, CausalEccentricityMatchesAllSources) {
  const auto topo = repeat(makePath(7), 10);
  int worst = 0;
  for (NodeId v = 0; v < 7; ++v) {
    worst = std::max(worst, causalEccentricity(topo, v, 0));
  }
  EXPECT_EQ(worst, allSourcesEccentricity(topo, 0));
}

TEST(Diameter, DynamicDiameterOverStartRounds) {
  // Path for 12 rounds, then clique: starting late is faster, so the
  // diameter over all starts is governed by the earliest start.
  TopologySeq topo;
  for (int r = 0; r < 12; ++r) {
    topo.push_back(makePath(6));
  }
  for (int r = 0; r < 12; ++r) {
    topo.push_back(makeClique(6));
  }
  EXPECT_EQ(dynamicDiameter(topo, 3), 5);
  EXPECT_EQ(allSourcesEccentricity(topo, 12), 1);
}

TEST(Diameter, TimeDependentEdgeWave) {
  // Edge i–(i+1) exists only in round i+1.  Influence from node 0 rides the
  // wave and covers the path in n-1 rounds; node n-1's influence can never
  // reach node 0 (its edges lie in the past), so its eccentricity is -1
  // within the horizon.
  const NodeId n = 5;
  TopologySeq topo;
  for (int r = 1; r <= 2 * n; ++r) {
    std::vector<Edge> edges;
    if (r <= n - 1) {
      edges.push_back({static_cast<NodeId>(r - 1), static_cast<NodeId>(r)});
    } else {
      edges.push_back({0, 1});  // keep the graph non-empty
    }
    topo.push_back(std::make_shared<Graph>(n, std::move(edges)));
  }
  EXPECT_EQ(causalEccentricity(topo, 0, 0), n - 1);
  EXPECT_EQ(causalEccentricity(topo, n - 1, 0), -1);
}

TEST(CausalReach, BudgetRespected) {
  const auto topo = repeat(makePath(8), 10);
  const auto bits = causalReach(topo, 0, 0, 3);
  for (NodeId v = 0; v < 8; ++v) {
    EXPECT_EQ(bitmapTest(bits, v), v <= 3) << "v=" << v;
  }
}

TEST(CausalReach, StartRoundOffset) {
  // Clique in round 1, then empty-ish path: starting at round 1 (0-based
  // start_round=1) sees only the later graphs.
  TopologySeq topo;
  topo.push_back(makeClique(4));
  topo.push_back(makePath(4));
  topo.push_back(makePath(4));
  const auto from0 = causalReach(topo, 0, 0, 1);
  EXPECT_TRUE(bitmapTest(from0, 3));
  const auto from1 = causalReach(topo, 0, 1, 1);
  EXPECT_FALSE(bitmapTest(from1, 3));
  EXPECT_TRUE(bitmapTest(from1, 1));
}

}  // namespace
}  // namespace dynet::net
