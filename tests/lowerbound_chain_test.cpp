// Chain label algebra and subnetwork structure: removal schedules of the
// three adversaries (exhaustive over feasible labels), the paper's Figure
// 1/2/3 examples, node counts, and per-round connectivity.
#include <gtest/gtest.h>

#include "cc/disjointness_cp.h"
#include "lowerbound/chain.h"
#include "lowerbound/composition.h"
#include "lowerbound/distance_lb.h"
#include "lowerbound/gamma.h"
#include "lowerbound/lambda.h"
#include "net/diameter.h"
#include "util/check.h"

namespace dynet::lb {
namespace {

TEST(Feasible, EnumeratesSixShapes) {
  const int q = 7;
  int count = 0;
  for (int x = 0; x < q; ++x) {
    for (int y = 0; y < q; ++y) {
      if (feasibleLabels(x, y, q)) {
        ++count;
      }
    }
  }
  // (0,0), (q-1,q-1), q-1 ascending, q-1 descending.
  EXPECT_EQ(count, 2 + 2 * (q - 1));
}

TEST(EdgeSchedule, PresenceSemantics) {
  const EdgeSchedule keep{EdgeRule::kKeep, kNever};
  EXPECT_TRUE(keep.presentAt(1, true));
  EXPECT_TRUE(keep.presentAt(1000000, false));

  const EdgeSchedule fixed{EdgeRule::kFixed, 3};
  EXPECT_TRUE(fixed.presentAt(2, true));
  EXPECT_FALSE(fixed.presentAt(3, true));
  EXPECT_FALSE(fixed.presentAt(4, false));

  const EdgeSchedule cond{EdgeRule::kConditional, 2};  // base t = 2
  EXPECT_TRUE(cond.presentAt(2, false));
  EXPECT_TRUE(cond.presentAt(3, true));    // mid receiving in t+1: defer
  EXPECT_FALSE(cond.presentAt(3, false));  // mid sending: removed at t+1
  EXPECT_FALSE(cond.presentAt(4, true));   // gone from t+2 regardless
}

struct ChainCase {
  int top;
  int bottom;
  // Expected reference behaviour.
  EdgeRule top_rule;
  Round top_round;
  EdgeRule bottom_rule;
  Round bottom_round;
};

class ReferenceRuleSweep : public ::testing::TestWithParam<int> {};

TEST_P(ReferenceRuleSweep, AllFeasiblePairsMatchRules) {
  const int q = GetParam();
  for (int top = 0; top < q; ++top) {
    for (int bottom = 0; bottom < q; ++bottom) {
      if (!feasibleLabels(top, bottom, q)) {
        continue;
      }
      const ChainSchedule s =
          referenceSchedule(top, bottom, q, Subnet::kGamma);
      if (top == 0 && bottom == 0) {
        EXPECT_EQ(s.top.rule, EdgeRule::kFixed);
        EXPECT_EQ(s.top.round, 1);
        EXPECT_EQ(s.bottom.rule, EdgeRule::kFixed);
        EXPECT_EQ(s.bottom.round, 1);
        EXPECT_TRUE(s.both_removed);
      } else if (top == q - 1 && bottom == q - 1) {
        EXPECT_EQ(s.top.rule, EdgeRule::kKeep);
        EXPECT_EQ(s.bottom.rule, EdgeRule::kKeep);
      } else if (top % 2 == 0 && bottom == top - 1) {
        // Rule 1.
        EXPECT_EQ(s.top.rule, EdgeRule::kFixed);
        EXPECT_EQ(s.top.round, top / 2 + 1);
        EXPECT_EQ(s.bottom.rule, EdgeRule::kKeep);
      } else if (top % 2 == 1 && bottom == top + 1) {
        // Rule 2.
        EXPECT_EQ(s.bottom.rule, EdgeRule::kFixed);
        EXPECT_EQ(s.bottom.round, bottom / 2 + 1);
        EXPECT_EQ(s.top.rule, EdgeRule::kKeep);
      } else if (top % 2 == 0 && bottom == top + 1) {
        // Rule 3.
        EXPECT_EQ(s.top.rule, EdgeRule::kConditional);
        EXPECT_EQ(s.top.round, top / 2);
        EXPECT_EQ(s.bottom.rule, EdgeRule::kKeep);
      } else {
        // Rule 4.
        EXPECT_EQ(s.bottom.rule, EdgeRule::kConditional);
        EXPECT_EQ(s.bottom.round, bottom / 2);
        EXPECT_EQ(s.top.rule, EdgeRule::kKeep);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Qs, ReferenceRuleSweep, ::testing::Values(3, 5, 7, 9, 31));

TEST(ReferenceRuleLambda, CascadeChains) {
  const int q = 7;
  // (2t, 2t) for t <= (q-3)/2 = 2: removed at t+1.
  for (int t = 0; t <= 2; ++t) {
    const ChainSchedule s =
        referenceSchedule(2 * t, 2 * t, q, Subnet::kLambda);
    EXPECT_EQ(s.top.rule, EdgeRule::kFixed);
    EXPECT_EQ(s.top.round, t + 1);
    EXPECT_EQ(s.bottom.round, t + 1);
    EXPECT_TRUE(s.both_removed);
  }
  // (q-1, q-1) untouched.
  const ChainSchedule last = referenceSchedule(q - 1, q - 1, q, Subnet::kLambda);
  EXPECT_EQ(last.top.rule, EdgeRule::kKeep);
  EXPECT_EQ(last.bottom.rule, EdgeRule::kKeep);
}

TEST(ReferenceRuleGamma, EqualEvenLabelsRejectedOutsideLambda) {
  EXPECT_THROW(referenceSchedule(2, 2, 7, Subnet::kGamma), util::CheckError);
}

class PartyRuleSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartyRuleSweep, WildcardRules) {
  const int q = GetParam();
  for (int label = 0; label < q; ++label) {
    const ChainSchedule alice = aliceSchedule(label, q);
    const ChainSchedule bob = bobSchedule(label, q);
    if (label % 2 == 0) {
      EXPECT_EQ(alice.top.rule, EdgeRule::kFixed);
      EXPECT_EQ(alice.top.round, label / 2 + 1);
      EXPECT_EQ(alice.bottom.rule, EdgeRule::kKeep);
      EXPECT_EQ(bob.bottom.rule, EdgeRule::kFixed);
      EXPECT_EQ(bob.bottom.round, label / 2 + 1);
      EXPECT_EQ(bob.top.rule, EdgeRule::kKeep);
    } else {
      EXPECT_EQ(alice.bottom.rule, EdgeRule::kFixed);
      EXPECT_EQ(alice.bottom.round, (label - 1) / 2 + 2);
      EXPECT_EQ(alice.top.rule, EdgeRule::kKeep);
      EXPECT_EQ(bob.top.rule, EdgeRule::kFixed);
      EXPECT_EQ(bob.top.round, (label - 1) / 2 + 2);
      EXPECT_EQ(bob.bottom.rule, EdgeRule::kKeep);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Qs, PartyRuleSweep, ::testing::Values(3, 5, 7, 9));

TEST(PartyRules, NoRemovalsWithinHorizonForHighLabels) {
  // Paper: "Alice's adversary will not have removed any edges from
  // |q-1 and |q-2 chains by the end of the simulation" ((q-1)/2 rounds).
  for (const int q : {5, 7, 9, 31}) {
    const Round horizon = (q - 1) / 2;
    for (const int label : {q - 1, q - 2}) {
      const ChainSchedule s = aliceSchedule(label, q);
      EXPECT_TRUE(s.top.presentAt(horizon, true)) << "q=" << q << " l=" << label;
      EXPECT_TRUE(s.bottom.presentAt(horizon, true));
    }
  }
}

TEST(PartyRules, AgreeWithReferenceOnUnconditionalShapes) {
  // Rules 1 and 2 chains: all three adversaries behave identically.
  const int q = 9;
  for (int top = 0; top < q; ++top) {
    for (int bottom = 0; bottom < q; ++bottom) {
      if (!feasibleLabels(top, bottom, q) || top == bottom) {
        continue;
      }
      const bool rule12 = (top % 2 == 0 && bottom == top - 1) ||
                          (top % 2 == 1 && bottom == top + 1);
      if (!rule12) {
        continue;
      }
      const ChainSchedule ref = referenceSchedule(top, bottom, q, Subnet::kGamma);
      const ChainSchedule alice = aliceSchedule(top, q);
      const ChainSchedule bob = bobSchedule(bottom, q);
      for (Round r = 1; r <= q; ++r) {
        EXPECT_EQ(ref.top.presentAt(r, true), alice.top.presentAt(r, true));
        EXPECT_EQ(ref.top.presentAt(r, true), bob.top.presentAt(r, true));
        EXPECT_EQ(ref.bottom.presentAt(r, true), alice.bottom.presentAt(r, true));
        EXPECT_EQ(ref.bottom.presentAt(r, true), bob.bottom.presentAt(r, true));
      }
    }
  }
}

TEST(Spoiled, RulesMatchPaper) {
  // Alice, |2t over *: V and W spoiled from t+1; |2t+1 over *: W from t+1.
  EXPECT_EQ(aliceSpoiled(4).u, kNever);
  EXPECT_EQ(aliceSpoiled(4).v, 3);
  EXPECT_EQ(aliceSpoiled(4).w, 3);
  EXPECT_EQ(aliceSpoiled(5).u, kNever);
  EXPECT_EQ(aliceSpoiled(5).v, kNever);
  EXPECT_EQ(aliceSpoiled(5).w, 3);
  // Bob, symmetric on bottoms.
  EXPECT_EQ(bobSpoiled(4).w, kNever);
  EXPECT_EQ(bobSpoiled(4).v, 3);
  EXPECT_EQ(bobSpoiled(4).u, 3);
  EXPECT_EQ(bobSpoiled(5).u, 3);
  EXPECT_EQ(bobSpoiled(5).v, kNever);
  // Figure 3 narrative: V on the (2,3) chain spoiled for Alice at round 2.
  EXPECT_EQ(aliceSpoiled(2).v, 2);
}

// --- Figure 1: the exact published example. ---

class Fig1Gamma : public ::testing::Test {
 protected:
  Fig1Gamma() : net_(cc::figure1Instance(), 0) {}
  GammaNet net_;
};

TEST_F(Fig1Gamma, Structure) {
  EXPECT_EQ(net_.groups(), 4);
  EXPECT_EQ(net_.chainsPerGroup(), 2);
  EXPECT_EQ(net_.numNodes(), 2 + 3 * 4 * 2);  // (3/2)n(q-1)+2 = 26
  // Group 3 is the |0,0 group: 2 line middles.
  EXPECT_EQ(net_.zeroLineMids().size(), 2u);
}

bool hasEdge(const std::vector<net::Edge>& edges, NodeId a, NodeId b) {
  for (const auto& e : edges) {
    if ((e.a == a && e.b == b) || (e.a == b && e.b == a)) {
      return true;
    }
  }
  return false;
}

TEST_F(Fig1Gamma, ReferenceScheduleWithAllMiddlesReceiving) {
  // Figure 1 assumes all middles receive every round.  Expected removals:
  //   group 0, labels (3,2): rule 4, defer -> bottom absent from round 3;
  //   group 1, labels (1,2): rule 2 -> bottom absent from round 2;
  //   group 2, labels (1,0): rule 4, defer -> bottom absent from round 2;
  //   group 3, labels (0,0): both absent from round 1, middles in a line.
  std::vector<sim::Action> receiving(static_cast<std::size_t>(net_.numNodes()));
  for (Round r = 1; r <= 2; ++r) {
    std::vector<net::Edge> edges;
    net_.appendReferenceEdges(r, receiving, edges);
    for (int j = 0; j < 2; ++j) {
      // Group 0: top always present; bottom present through round 2.
      EXPECT_TRUE(hasEdge(edges, net_.top(0, j), net_.mid(0, j)));
      EXPECT_EQ(hasEdge(edges, net_.mid(0, j), net_.bottom(0, j)), r <= 2);
      // Group 1: bottom gone from round 2.
      EXPECT_TRUE(hasEdge(edges, net_.top(1, j), net_.mid(1, j)));
      EXPECT_EQ(hasEdge(edges, net_.mid(1, j), net_.bottom(1, j)), r < 2);
      // Group 2: bottom gone from round 2 (deferred from 1).
      EXPECT_TRUE(hasEdge(edges, net_.top(2, j), net_.mid(2, j)));
      EXPECT_EQ(hasEdge(edges, net_.mid(2, j), net_.bottom(2, j)), r < 2);
      // Group 3: both gone from round 1.
      EXPECT_FALSE(hasEdge(edges, net_.top(3, j), net_.mid(3, j)));
      EXPECT_FALSE(hasEdge(edges, net_.mid(3, j), net_.bottom(3, j)));
      // Permanent attachments.
      EXPECT_TRUE(hasEdge(edges, net_.a(), net_.top(0, j)));
      EXPECT_TRUE(hasEdge(edges, net_.bottom(2, j), net_.b()));
    }
    // The |0,0 line.
    EXPECT_TRUE(hasEdge(edges, net_.zeroLineMids()[0], net_.zeroLineMids()[1]));
  }
  // Round 3: group 0 bottoms gone too.
  std::vector<net::Edge> edges;
  net_.appendReferenceEdges(3, receiving, edges);
  EXPECT_FALSE(hasEdge(edges, net_.mid(0, 0), net_.bottom(0, 0)));
}

TEST_F(Fig1Gamma, ReferenceScheduleWithMiddlesSending) {
  // If the (1,0) middles send in round 1, rule 4 removes their bottoms in
  // round 1 already.
  std::vector<sim::Action> actions(static_cast<std::size_t>(net_.numNodes()));
  for (int j = 0; j < 2; ++j) {
    actions[static_cast<std::size_t>(net_.mid(2, j))].send = true;
  }
  std::vector<net::Edge> edges;
  net_.appendReferenceEdges(1, actions, edges);
  EXPECT_FALSE(hasEdge(edges, net_.mid(2, 0), net_.bottom(2, 0)));
  EXPECT_FALSE(hasEdge(edges, net_.mid(2, 1), net_.bottom(2, 1)));
}

TEST_F(Fig1Gamma, PartyViewsMatchPaperNarrative) {
  // Bob removes the bottom edge of every (1,0) chain at round 1 while the
  // reference (middles receiving) waits until round 2.
  std::vector<net::Edge> bob_edges;
  net_.appendPartyEdges(Party::kBob, 1, bob_edges);
  EXPECT_FALSE(hasEdge(bob_edges, net_.mid(2, 0), net_.bottom(2, 0)));
  // Alice at round 1: (0,0) chain tops removed (x=0 is even), and she keeps
  // the bottoms (the "?" region).
  std::vector<net::Edge> alice_edges;
  net_.appendPartyEdges(Party::kAlice, 1, alice_edges);
  EXPECT_FALSE(hasEdge(alice_edges, net_.top(3, 0), net_.mid(3, 0)));
  EXPECT_TRUE(hasEdge(alice_edges, net_.mid(3, 0), net_.bottom(3, 0)));
  // Neither party sees the |0,0 line.
  EXPECT_FALSE(
      hasEdge(alice_edges, net_.zeroLineMids()[0], net_.zeroLineMids()[1]));
  EXPECT_FALSE(
      hasEdge(bob_edges, net_.zeroLineMids()[0], net_.zeroLineMids()[1]));
}

TEST_F(Fig1Gamma, SpoiledAssignments) {
  const auto alice = [&] {
    std::vector<Round> s(static_cast<std::size_t>(net_.numNodes()), kNever);
    net_.fillSpoiledFrom(Party::kAlice, s);
    return s;
  }();
  EXPECT_EQ(alice[static_cast<std::size_t>(net_.a())], kNever);
  EXPECT_EQ(alice[static_cast<std::size_t>(net_.b())], kAlwaysSpoiled);
  // Group 3 (0,0): V, W spoiled from round 1; U never.
  EXPECT_EQ(alice[static_cast<std::size_t>(net_.top(3, 0))], kNever);
  EXPECT_EQ(alice[static_cast<std::size_t>(net_.mid(3, 0))], 1);
  EXPECT_EQ(alice[static_cast<std::size_t>(net_.bottom(3, 0))], 1);
  // Group 0 (3,2): top odd -> only W spoiled, from round 2.
  EXPECT_EQ(alice[static_cast<std::size_t>(net_.mid(0, 0))], kNever);
  EXPECT_EQ(alice[static_cast<std::size_t>(net_.bottom(0, 0))], 2);
}

// --- Figures 2 and 3: centipede structures. ---

TEST(Fig2Lambda, ZeroZeroCentipedeCascade) {
  // x_i = y_i = 0, q = 7: chains labelled (0,0), (2,2), (4,4), (6,6);
  // removals at rounds 1, 2, 3; the (6,6) chain is untouched.
  cc::Instance inst;
  inst.n = 1;
  inst.q = 7;
  inst.x = {0};
  inst.y = {0};
  LambdaNet net(inst, 0);
  EXPECT_EQ(net.chainsPerCentipede(), 4);
  EXPECT_EQ(net.mountingPoints().size(), 1u);
  EXPECT_EQ(net.mountingPoints()[0], net.mid(0, 0));
  std::vector<sim::Action> receiving(static_cast<std::size_t>(net.numNodes()));
  for (Round r = 1; r <= 4; ++r) {
    std::vector<net::Edge> edges;
    net.appendReferenceEdges(r, receiving, edges);
    auto chain_present = [&](int j) {
      return hasEdge(edges, net.top(0, j), net.mid(0, j)) &&
             hasEdge(edges, net.mid(0, j), net.bottom(0, j));
    };
    EXPECT_EQ(chain_present(0), r < 1) << "r=" << r;
    EXPECT_EQ(chain_present(1), r < 2) << "r=" << r;
    EXPECT_EQ(chain_present(2), r < 3) << "r=" << r;
    EXPECT_TRUE(chain_present(3)) << "r=" << r;
    // Middle line is permanent.
    for (int j = 0; j + 1 < 4; ++j) {
      EXPECT_TRUE(hasEdge(edges, net.mid(0, j), net.mid(0, j + 1)));
    }
  }
}

TEST(Fig3Lambda, ShiftedLabelsCascade) {
  // x_i = 2, y_i = 3, q = 7: chains labelled (2,3), (4,5), (6,6), (6,6).
  cc::Instance inst;
  inst.n = 1;
  inst.q = 7;
  inst.x = {2};
  inst.y = {3};
  LambdaNet net(inst, 0);
  EXPECT_EQ(net.topLabel(0, 0), 2);
  EXPECT_EQ(net.bottomLabel(0, 0), 3);
  EXPECT_EQ(net.topLabel(0, 1), 4);
  EXPECT_EQ(net.bottomLabel(0, 1), 5);
  EXPECT_EQ(net.topLabel(0, 2), 6);
  EXPECT_EQ(net.bottomLabel(0, 2), 6);
  EXPECT_EQ(net.topLabel(0, 3), 6);
  EXPECT_TRUE(net.mountingPoints().empty());
  // With all middles *sending* (the figure's assumption), rule 3 fires at
  // t+1: chain (2,3) loses its top edge at round 2, chain (4,5) at round 3.
  std::vector<sim::Action> sending(static_cast<std::size_t>(net.numNodes()));
  for (auto& a : sending) {
    a.send = true;
  }
  for (Round r = 1; r <= 3; ++r) {
    std::vector<net::Edge> edges;
    net.appendReferenceEdges(r, sending, edges);
    EXPECT_EQ(hasEdge(edges, net.top(0, 0), net.mid(0, 0)), r < 2) << r;
    EXPECT_EQ(hasEdge(edges, net.top(0, 1), net.mid(0, 1)), r < 3) << r;
    // Bottom edges of rule-3 chains stay.
    EXPECT_TRUE(hasEdge(edges, net.mid(0, 0), net.bottom(0, 0)));
    // (6,6) chains stay whole.
    EXPECT_TRUE(hasEdge(edges, net.top(0, 2), net.mid(0, 2)));
    EXPECT_TRUE(hasEdge(edges, net.mid(0, 2), net.bottom(0, 2)));
  }
}

TEST(LambdaNet, LastChainAlwaysIntactKeepsSubnetConnected) {
  util::Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    const cc::Instance inst = cc::randomInstance(3, 9, rng);
    LambdaNet net(inst, 0);
    std::vector<sim::Action> receiving(static_cast<std::size_t>(net.numNodes()));
    for (Round r = 1; r <= inst.q; ++r) {
      std::vector<net::Edge> edges;
      net.appendReferenceEdges(r, receiving, edges);
      net::Graph g(net.numNodes(), edges);
      EXPECT_TRUE(g.connected())
          << "trial " << trial << " round " << r << " " << cc::describe(inst);
    }
  }
}

TEST(NodeCounts, MatchTheoremSix) {
  util::Rng rng(4);
  for (const int q : {5, 9, 31}) {
    for (const int n : {1, 2, 5}) {
      const cc::Instance inst = cc::randomInstance(n, q, rng);
      const GammaNet gamma(inst, 0);
      const LambdaNet lambda(inst, gamma.numNodes());
      EXPECT_EQ(gamma.numNodes(), 3 * n * (q - 1) / 2 + 2);
      EXPECT_EQ(lambda.numNodes(), 3 * n * (q + 1) / 2 + 2);
      EXPECT_EQ(gamma.numNodes() + lambda.numNodes(), 3 * n * q + 4);
    }
  }
}

TEST(ZeroLine, SizeMatchesZeroGroups) {
  cc::Instance inst;
  inst.n = 3;
  inst.q = 9;
  inst.x = {0, 1, 0};
  inst.y = {0, 2, 0};
  GammaNet net(inst, 0);
  // Two |0,0 groups, (q-1)/2 = 4 chains each.
  EXPECT_EQ(net.zeroLineMids().size(), 8u);
}

TEST(CFloodNetwork, BridgesPerDisj) {
  util::Rng rng(6);
  const cc::Instance one = cc::randomInstance(2, 9, rng, 1);
  const CFloodNetwork net1(one);
  EXPECT_EQ(net1.bridges().size(), 2u);
  const cc::Instance zero = cc::randomInstance(2, 9, rng, 0);
  const CFloodNetwork net0(zero);
  EXPECT_EQ(net0.bridges().size(), 3u);
  EXPECT_EQ(net0.disj(), 0);
  EXPECT_EQ(net1.disj(), 1);
  EXPECT_EQ(net0.horizon(), 4);
}

TEST(ConsensusNetwork, UpsilonExistsIffDisjZero) {
  util::Rng rng(8);
  const cc::Instance one = cc::randomInstance(2, 9, rng, 1);
  const ConsensusNetwork net1(one);
  EXPECT_FALSE(net1.hasUpsilon());
  EXPECT_EQ(net1.numNodes(), net1.lambda().numNodes());

  const cc::Instance zero = cc::randomInstance(2, 9, rng, 0);
  const ConsensusNetwork net0(zero);
  EXPECT_TRUE(net0.hasUpsilon());
  EXPECT_EQ(net0.numNodes(), 2 * net0.lambda().numNodes());
  // Initial values: Λ all 0, Υ all 1.
  const auto values = net0.initialValues();
  for (NodeId v = 0; v < net0.lambda().numNodes(); ++v) {
    EXPECT_EQ(values[static_cast<std::size_t>(v)], 0u);
  }
  for (NodeId v = net0.lambda().numNodes(); v < net0.numNodes(); ++v) {
    EXPECT_EQ(values[static_cast<std::size_t>(v)], 1u);
  }
}

TEST(ConsensusNetwork, EstimateValidForBothSizes) {
  util::Rng rng(9);
  const cc::Instance zero = cc::randomInstance(2, 9, rng, 0);
  const ConsensusNetwork net0(zero);
  const cc::Instance one = cc::randomInstance(2, 9, rng, 1);
  const ConsensusNetwork net1(one);
  // Same N' must be within 1/3 relative error of both possible N values.
  const double n_est = net0.nEstimate();
  EXPECT_LE(std::abs(n_est - net0.numNodes()) / net0.numNodes(), 1.0 / 3.0 + 1e-9);
  EXPECT_LE(std::abs(net1.nEstimate() - net1.numNodes()) / net1.numNodes(),
            1.0 / 3.0 + 1e-9);
}

// --- Distance-hardness gadget boundaries (docs/DIAMETER.md). ---
//
// The families promise LOUD CheckError below their minimum size — never a
// silently clamped smaller instance — and exact n-node padding above it.

TEST(AchGadget, ThrowsBelowMinimumInsteadOfClamping) {
  for (const int width : {0, 1, 3, 8}) {
    const net::NodeId min_n = AchBitGadget::minNodes(width);
    EXPECT_THROW(AchBitGadget(min_n - 1, width, 1, false), util::CheckError)
        << "width=" << width;
    const AchBitGadget gadget(min_n, width, 1, false);
    EXPECT_EQ(gadget.numNodes(), min_n) << "width=" << width;
    EXPECT_EQ(gadget.graph()->numNodes(), min_n) << "width=" << width;
    EXPECT_EQ(gadget.m(), 2) << "width=" << width;
  }
  EXPECT_THROW(AchBitGadget(64, -1, 1, false), util::CheckError);
  EXPECT_THROW(AchBitGadget::minNodes(-3), util::CheckError);
}

TEST(AchGadget, PadsToExactlyNAndKeepsThePromisedDiameter) {
  // Odd and even widths, clean and planted, padded and tight: the BFS
  // oracle must see exactly the diameter the family advertises.
  for (const int width : {0, 1, 2, 5}) {
    for (const bool intersect : {false, true}) {
      for (const net::NodeId n : {AchBitGadget::minNodes(width),
                                  static_cast<net::NodeId>(40),
                                  static_cast<net::NodeId>(57)}) {
        const AchBitGadget gadget(n, width, 7, intersect);
        EXPECT_EQ(gadget.numNodes(), n);
        EXPECT_EQ(gadget.intersects(), intersect);
        EXPECT_EQ(net::staticDiameter(*gadget.graph()),
                  gadget.expectedDiameter())
            << "n=" << n << " width=" << width << " intersect=" << intersect;
      }
    }
  }
}

TEST(AchGadget, AutoWidthGrowsMWithN) {
  const AchBitGadget small(16, 0, 3, false);
  const AchBitGadget large(96, 0, 3, false);
  EXPECT_GT(large.m(), small.m());
  EXPECT_GE(large.width(), small.width());
  // m indices must be distinct in `width` bits.
  EXPECT_LE(small.m(), 1 << small.width());
  EXPECT_LE(large.m(), 1 << large.width());
  EXPECT_EQ(large.cutEdges(), 2 * large.width() + 1);
}

TEST(BkGadget, RejectsOddWidthNegativeStretchAndTinyN) {
  EXPECT_THROW(BkApproxGadget(64, 3, 1, 1, false), util::CheckError);
  EXPECT_THROW(BkApproxGadget(64, -2, 1, 1, false), util::CheckError);
  EXPECT_THROW(BkApproxGadget(64, 2, -1, 1, false), util::CheckError);
  EXPECT_THROW(BkApproxGadget::minNodes(5, 0), util::CheckError);
  for (const int stretch : {0, 1, 4}) {
    const net::NodeId min_n = BkApproxGadget::minNodes(0, stretch);
    EXPECT_THROW(BkApproxGadget(min_n - 1, 0, stretch, 1, false),
                 util::CheckError)
        << "stretch=" << stretch;
    const BkApproxGadget gadget(min_n, 0, stretch, 1, false);
    EXPECT_EQ(gadget.numNodes(), min_n) << "stretch=" << stretch;
    EXPECT_EQ(gadget.m(), 2) << "stretch=" << stretch;
  }
}

TEST(BkGadget, DiameterScalesWithStretchAndPlantedPair) {
  for (const int stretch : {0, 1, 2}) {
    for (const bool orthogonal : {false, true}) {
      for (const net::NodeId n : {BkApproxGadget::minNodes(4, stretch),
                                  static_cast<net::NodeId>(48)}) {
        const BkApproxGadget gadget(n, 4, stretch, 11, orthogonal);
        EXPECT_EQ(gadget.numNodes(), n);
        EXPECT_EQ(gadget.expectedDiameter(),
                  2 * stretch + 2 + (orthogonal ? 1 : 0));
        EXPECT_EQ(net::staticDiameter(*gadget.graph()),
                  gadget.expectedDiameter())
            << "n=" << n << " stretch=" << stretch
            << " orthogonal=" << orthogonal;
      }
    }
  }
}

}  // namespace
}  // namespace dynet::lb
