// Dataset subsystem coverage: text parsers (event list, snapshot+diff),
// the compiler's interval normalization, the versioned binary cache with
// its torn-tail detection, and TraceAdversary replay semantics.
//
// The load-bearing invariants:
//
//   * malformed input fails LOUDLY with the file name and line (or byte
//     offset) in the message — a dataset typo must never silently become
//     a different topology;
//   * a compiled .dtc cache replays byte-identically to the text parse it
//     came from, including through campaign checkpoint/resume;
//   * TraceAdversary's two engine paths (full rebuild vs positional
//     deltas) emit value-identical edge sequences under every end policy.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <span>
#include <utility>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/trace_adversary.h"
#include "campaign/scheduler.h"
#include "campaign/shard_exec.h"
#include "campaign/spec.h"
#include "dataset/compiled_format.h"
#include "dataset/text_format.h"
#include "dataset/trace.h"
#include "net/graph.h"
#include "obs/json.h"
#include "protocols/flood.h"
#include "sim/engine.h"
#include "util/check.h"
#include "util/rng.h"

namespace dynet::dataset {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  fs::remove_all(path);
  fs::create_directories(path);
  return path;
}

void writeFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << path;
  out << contents;
}

TraceEvents parseText(const std::string& text, double bucket = 1.0) {
  std::istringstream in(text);
  ParseOptions options;
  options.bucket = bucket;
  return parseEventList(in, "test.events", options);
}

/// Expects `fn` to throw a CheckError whose message contains `needle`.
template <typename Fn>
void expectLoudFailure(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected a CheckError mentioning '" << needle << "'";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "error message was: " << e.what();
  }
}

// ------------------------------------------------------- event-list parser

TEST(EventList, ParsesLabelsBucketsAndComments) {
  const TraceEvents events = parseText(
      "# comment line\n"
      "0 3 alice bob\n"
      "\n"
      "1.5 4.2 bob carol\n"
      "0 0 carol alice\n");
  EXPECT_EQ(events.num_nodes, 3);
  ASSERT_EQ(events.labels.size(), 3u);
  // First-appearance interning.
  EXPECT_EQ(events.labels[0], "alice");
  EXPECT_EQ(events.labels[1], "bob");
  EXPECT_EQ(events.labels[2], "carol");
  ASSERT_EQ(events.intervals.size(), 3u);
  // t_min = 0, bucket 1: [0,3] -> rounds [1,4]; [1.5,4.2] -> [2,5].
  EXPECT_EQ(events.intervals[0].first, 1);
  EXPECT_EQ(events.intervals[0].last, 4);
  EXPECT_EQ(events.intervals[1].first, 2);
  EXPECT_EQ(events.intervals[1].last, 5);
  EXPECT_EQ(events.rounds, 5);
}

TEST(EventList, WiderBucketCoarsensRounds) {
  const TraceEvents events = parseText("0 9 a b\n5 9 b c\n", /*bucket=*/5.0);
  EXPECT_EQ(events.intervals[0].first, 1);
  EXPECT_EQ(events.intervals[0].last, 2);
  EXPECT_EQ(events.intervals[1].first, 2);
  EXPECT_EQ(events.rounds, 2);
}

TEST(EventList, MalformedInputsFailWithLineNumbers) {
  // Truncated record (3 fields): diagnostic carries file:line.
  expectLoudFailure([] { parseText("0 3 a b\n1 4 c\n"); }, "test.events:2");
  expectLoudFailure([] { parseText("0 3 a b\n1 4 c\n"); }, "field(s)");
  // Non-numeric timestamp.
  expectLoudFailure([] { parseText("zero 3 a b\n"); }, "test.events:1");
  // Interval that ends before it starts (out-of-order timestamps).
  expectLoudFailure([] { parseText("5 2 a b\n"); }, "before it starts");
  // Self-loop.
  expectLoudFailure([] { parseText("0 3 a a\n"); }, "self-loop");
  // Empty dataset.
  expectLoudFailure([] { parseText("# nothing\n"); }, "test.events");
}

// ---------------------------------------------------- snapshot+diff parser

void writeSnapshotFixture(const std::string& dir) {
  fs::create_directories(dir + "/sn");
  writeFile(dir + "/sn/1.edges", "a b\nb c\nc d\n");
  writeFile(dir + "/sn/2.edges", "a b\nb c\nb d\n");
  writeFile(dir + "/sn/3.edges", "a b\nb d\n");
}

TEST(SnapshotDir, ParsesConsecutiveSnapshots) {
  const std::string dir = freshDir("snapdir_ok");
  writeSnapshotFixture(dir);
  const TraceEvents events = parseSnapshotDir(dir);
  EXPECT_EQ(events.num_nodes, 4);
  EXPECT_EQ(events.rounds, 3);
  const CompiledTrace trace = compile(events);
  ASSERT_EQ(trace.initial.size(), 3u);
  ASSERT_EQ(trace.deltas.size(), 2u);
  // Round 1 -> 2: c-d out, b-d in.
  EXPECT_EQ(trace.deltas[0].removed.size(), 1u);
  EXPECT_EQ(trace.deltas[0].added.size(), 1u);
  // Round 2 -> 3: b-c out.
  EXPECT_EQ(trace.deltas[1].removed.size(), 1u);
  EXPECT_TRUE(trace.deltas[1].added.empty());
}

TEST(SnapshotDir, ValidDiffsAreAcceptedAndBadOnesRejected) {
  const std::string ok = freshDir("snapdir_diff_ok");
  writeSnapshotFixture(ok);
  fs::create_directories(ok + "/diff");
  writeFile(ok + "/diff/2.diff", "- c d\n+ b d\n");
  writeFile(ok + "/diff/3.diff", "- b c\n");
  EXPECT_EQ(compile(parseSnapshotDir(ok)).rounds, 3);

  // A diff that patches to something other than the next snapshot.
  const std::string bad = freshDir("snapdir_diff_bad");
  writeSnapshotFixture(bad);
  fs::create_directories(bad + "/diff");
  writeFile(bad + "/diff/2.diff", "- c d\n");  // misses "+ b d"
  expectLoudFailure([&] { parseSnapshotDir(bad); }, "internally inconsistent");
}

TEST(SnapshotDir, MalformedLayoutsFailLoudly) {
  // Missing snapshot index (1 and 3 but no 2).
  const std::string gap = freshDir("snapdir_gap");
  fs::create_directories(gap + "/sn");
  writeFile(gap + "/sn/1.edges", "a b\n");
  writeFile(gap + "/sn/3.edges", "a b\n");
  expectLoudFailure([&] { parseSnapshotDir(gap); }, "2.edges");

  // Duplicate edge within one snapshot.
  const std::string dup = freshDir("snapdir_dup");
  fs::create_directories(dup + "/sn");
  writeFile(dup + "/sn/1.edges", "a b\nb a\n");
  expectLoudFailure([&] { parseSnapshotDir(dup); }, "duplicate");

  // Diff adding an edge that is already present.
  const std::string plus = freshDir("snapdir_plus");
  writeSnapshotFixture(plus);
  fs::create_directories(plus + "/diff");
  writeFile(plus + "/diff/2.diff", "+ a b\n- c d\n+ b d\n");
  expectLoudFailure([&] { parseSnapshotDir(plus); }, "already present");
}

// ----------------------------------------------------------------- compile

TEST(Compile, MergesTouchingAndDuplicateIntervals) {
  // a-b active [1,3] and [4,6] (back-to-back) plus an exact duplicate:
  // one continuous presence, no delta churn in between.
  const CompiledTrace trace =
      compile(parseText("0 2 a b\n3 5 a b\n0 2 a b\n0 6 b c\n"));
  EXPECT_EQ(trace.rounds, 7);
  ASSERT_EQ(trace.initial.size(), 2u);
  for (sim::Round r = 0; r < 5; ++r) {
    EXPECT_TRUE(trace.deltas[static_cast<std::size_t>(r)].removed.empty())
        << "round " << r + 2;
  }
  // Final round: a-b expires (b-c holds through round 7).
  EXPECT_EQ(trace.deltas[5].removed.size(), 1u);
}

/// Relabel-invariant rendering of a trace: the per-round active edge set
/// under node *labels* (ids stringified when unlabeled).  Re-parsing
/// event-list text interns tokens in first-appearance order, so ids may
/// permute across a write/parse round trip while the labeled topology
/// timeline must not.
std::vector<std::set<std::pair<std::string, std::string>>> labeledTimeline(
    const CompiledTrace& t) {
  const auto name = [&](net::NodeId v) {
    return t.labels.empty() ? std::to_string(v)
                            : t.labels[static_cast<std::size_t>(v)];
  };
  const auto norm = [&](const net::Edge& e) {
    std::pair<std::string, std::string> p{name(e.a), name(e.b)};
    if (p.second < p.first) {
      std::swap(p.first, p.second);
    }
    return p;
  };
  std::set<std::pair<std::string, std::string>> active;
  std::vector<std::set<std::pair<std::string, std::string>>> rounds;
  for (const net::Edge& e : t.initial) {
    active.insert(norm(e));
  }
  rounds.push_back(active);
  for (const RoundDelta& d : t.deltas) {
    for (const net::Edge& e : d.removed) {
      active.erase(norm(e));
    }
    for (const net::Edge& e : d.added) {
      active.insert(norm(e));
    }
    rounds.push_back(active);
  }
  return rounds;
}

TEST(Compile, RoundTripsThroughWriteEventList) {
  const CompiledTrace original = randomTrace(24, 60, 3, 0xDA7A);
  std::ostringstream text;
  writeEventList(text, original);
  std::istringstream in(text.str());
  const CompiledTrace reparsed =
      compile(parseEventList(in, "roundtrip.events"));
  // source_hash differs by construction, and ids may permute (the parser
  // interns tokens in first-appearance order); the labeled topology
  // timeline must survive exactly.
  EXPECT_EQ(original.num_nodes, reparsed.num_nodes);
  EXPECT_EQ(original.rounds, reparsed.rounds);
  EXPECT_EQ(labeledTimeline(original), labeledTimeline(reparsed));
}

TEST(Compile, PositionalPatchMatchesGraphApplyDelta) {
  const CompiledTrace trace = randomTrace(16, 40, 4, 7);
  std::vector<net::Edge> edges = trace.initial;
  auto base = std::make_shared<net::Graph>(trace.num_nodes, edges);
  base->warm();
  net::GraphPtr graph = base;
  for (std::size_t i = 0; i < trace.deltas.size(); ++i) {
    const RoundDelta& d = trace.deltas[i];
    applyPositionalPatch(edges, d.removed, d.added, "trace",
                         static_cast<sim::Round>(i + 2));
    graph = graph->applyDelta(d.removed, d.added);
    // A delta with removals leaves the component cache cold; warm it the
    // way the engine warms each round's topology before the next patch.
    graph->warm();
    const std::span<const net::Edge> got = graph->edges();
    ASSERT_TRUE(std::equal(got.begin(), got.end(), edges.begin(), edges.end()))
        << "diverged at delta " << i;
  }
}

// ------------------------------------------------------------ binary cache

TEST(CompiledCache, SerializeParseRoundTrip) {
  const CompiledTrace trace = randomTrace(20, 50, 3, 99);
  const std::string dir = freshDir("dtc_roundtrip");
  const std::string path = dir + "/t.dtc";
  writeCompiledFile(path, trace);
  EXPECT_TRUE(isCompiledFile(path));
  const CompiledTrace back = readCompiledFile(path);
  EXPECT_TRUE(trace == back);
  EXPECT_EQ(contentHash(trace), contentHash(back));
}

TEST(CompiledCache, TornTailAndCorruptionFailLoudly) {
  const CompiledTrace trace = randomTrace(12, 30, 2, 5);
  const std::string dir = freshDir("dtc_torn");
  const std::string path = dir + "/t.dtc";
  writeCompiledFile(path, trace);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string bytes = buf.str();

  // Torn tail: a writer killed mid-dump leaves a truncated file.
  writeFile(path, bytes.substr(0, bytes.size() - 11));
  expectLoudFailure([&] { readCompiledFile(path); }, "byte");

  // Bit flip inside the payload: trailing hash catches it.
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;
  writeFile(path, flipped);
  expectLoudFailure([&] { readCompiledFile(path); }, "hash mismatch");

  // Wrong magic: not a compiled trace at all.
  expectLoudFailure([&] { readCompiledFile(path + ".nope"); }, "");
  writeFile(path, "DEFINITELYNOTATRACE");
  expectLoudFailure([&] { readCompiledFile(path); }, "magic");
}

TEST(CompiledCache, SidecarHitsSkipTextAndStaleSidecarsReparse) {
  const std::string dir = freshDir("dtc_sidecar");
  const std::string path = dir + "/t.events";
  const CompiledTrace generated = randomTrace(18, 40, 3, 13);
  {
    std::ofstream out(path);
    writeEventList(out, generated);
  }
  const LoadedTrace first = loadTrace(path);
  EXPECT_FALSE(first.from_cache);
  ASSERT_FALSE(first.cache_path.empty());
  EXPECT_TRUE(fs::exists(first.cache_path));

  const LoadedTrace second = loadTrace(path);
  EXPECT_TRUE(second.from_cache);
  EXPECT_TRUE(*first.trace == *second.trace);

  // A different bucket is a different compilation: the sidecar must miss.
  LoadOptions other_bucket;
  other_bucket.bucket = 2.0;
  other_bucket.write_cache = false;
  EXPECT_FALSE(loadTrace(path, other_bucket).from_cache);

  // Source edit invalidates the sidecar (source_hash mismatch).
  {
    std::ofstream out(path, std::ios::app);
    out << "1 5 x y\n";
  }
  const LoadedTrace after_edit = loadTrace(path);
  EXPECT_FALSE(after_edit.from_cache);
  EXPECT_FALSE(*after_edit.trace == *first.trace);
  EXPECT_TRUE(loadTrace(path).from_cache);  // rewritten and fresh again
}

// ----------------------------------------------------------- TraceAdversary

adv::TraceReplayOptions replayOptions(adv::TraceReplayOptions::EndPolicy p) {
  adv::TraceReplayOptions options;
  options.policy = p;
  return options;
}

TEST(TraceAdversary, EndPoliciesMapPositionsCorrectly) {
  const auto trace = std::make_shared<const CompiledTrace>(
      randomTrace(10, 4, 2, 3));  // rounds 1..4
  using EndPolicy = adv::TraceReplayOptions::EndPolicy;
  adv::TraceAdversary wrap(trace, replayOptions(EndPolicy::kWrap));
  adv::TraceAdversary clamp(trace, replayOptions(EndPolicy::kClamp));
  adv::TraceAdversary mirror(trace, replayOptions(EndPolicy::kMirror));
  const std::vector<sim::Round> wrap_expect = {1, 2, 3, 4, 1, 2, 3, 4, 1};
  const std::vector<sim::Round> clamp_expect = {1, 2, 3, 4, 4, 4, 4, 4, 4};
  // Mirror period 2*4-2 = 6: 1 2 3 4 3 2 | 1 2 3 ...
  const std::vector<sim::Round> mirror_expect = {1, 2, 3, 4, 3, 2, 1, 2, 3};
  for (sim::Round r = 1; r <= 9; ++r) {
    EXPECT_EQ(wrap.tracePosition(r), wrap_expect[static_cast<std::size_t>(r - 1)]);
    EXPECT_EQ(clamp.tracePosition(r),
              clamp_expect[static_cast<std::size_t>(r - 1)]);
    EXPECT_EQ(mirror.tracePosition(r),
              mirror_expect[static_cast<std::size_t>(r - 1)]);
  }
}

TEST(TraceAdversary, ParseEndPolicyIsLoudOnGarbage) {
  EXPECT_EQ(adv::parseEndPolicy("wrap"),
            adv::TraceReplayOptions::EndPolicy::kWrap);
  EXPECT_EQ(adv::parseEndPolicy("mirror"),
            adv::TraceReplayOptions::EndPolicy::kMirror);
  expectLoudFailure([] { adv::parseEndPolicy("bounce"); }, "bounce");
}

struct ReplayArtifacts {
  sim::RunResult result;
  std::vector<std::uint64_t> digests;
};

ReplayArtifacts replayRun(std::shared_ptr<const CompiledTrace> trace,
                          adv::TraceReplayOptions options, sim::Round rounds,
                          std::uint64_t seed, bool deltas) {
  const proto::FloodFactory factory(0, 0x2a, 8,
                                    proto::FloodMode::kDeterministic, 0);
  sim::EngineConfig config;
  config.max_rounds = rounds;
  config.topology_deltas = deltas;
  config.arena_delivery = deltas;
  config.stop_when_all_done = false;
  sim::Engine engine(factory,
                     std::make_unique<adv::TraceAdversary>(trace, options),
                     config, seed);
  ReplayArtifacts artifacts;
  artifacts.result = engine.run();
  for (sim::NodeId v = 0; v < trace->num_nodes; ++v) {
    artifacts.digests.push_back(engine.stateDigest(v));
  }
  return artifacts;
}

TEST(TraceAdversary, DeltaAndRebuildPathsAgreeUnderEveryPolicy) {
  const auto trace =
      std::make_shared<const CompiledTrace>(randomTrace(20, 12, 3, 0xBEEF));
  using EndPolicy = adv::TraceReplayOptions::EndPolicy;
  for (const EndPolicy policy :
       {EndPolicy::kWrap, EndPolicy::kClamp, EndPolicy::kMirror}) {
    for (const bool seeded : {false, true}) {
      adv::TraceReplayOptions options = replayOptions(policy);
      options.seeded_offset = seeded;
      options.seed = 0x5EED;
      // Run well past the trace end so every policy actually triggers.
      const ReplayArtifacts fast =
          replayRun(trace, options, /*rounds=*/40, 0x5EED, /*deltas=*/true);
      const ReplayArtifacts legacy =
          replayRun(trace, options, /*rounds=*/40, 0x5EED, /*deltas=*/false);
      EXPECT_EQ(fast.result.messages_sent, legacy.result.messages_sent)
          << adv::endPolicyName(policy) << " seeded=" << seeded;
      EXPECT_EQ(fast.result.bits_sent, legacy.result.bits_sent);
      EXPECT_EQ(fast.digests, legacy.digests)
          << adv::endPolicyName(policy) << " seeded=" << seeded;
    }
  }
}

TEST(TraceAdversary, SpineKeepsEveryRoundConnected) {
  // randomTrace graphs are not guaranteed connected once churned; the
  // spine overlay must carry the connectivity check on its own.
  const auto trace =
      std::make_shared<const CompiledTrace>(randomTrace(16, 20, 5, 0xC0));
  const proto::FloodFactory factory(0, 0x2a, 8,
                                    proto::FloodMode::kDeterministic, 0);
  sim::EngineConfig config;
  config.max_rounds = 30;  // connectivity check on by default
  sim::Engine engine(
      factory,
      std::make_unique<adv::TraceAdversary>(
          trace, replayOptions(adv::TraceReplayOptions::EndPolicy::kWrap)),
      config, 1);
  // The engine's per-round connectivity guard (on by default) throws on
  // the first disconnected topology, so completing the run IS the spine
  // working; the token reaching every node confirms it end to end.
  const sim::RunResult r = engine.run();
  EXPECT_EQ(r.rounds_executed, 30);
  for (sim::NodeId v = 0; v < trace->num_nodes; ++v) {
    EXPECT_EQ(engine.nodeOutput(v), 0x2au) << "node " << v;
  }
}

// ------------------------------------------------- campaign checkpoint/resume

TEST(TraceCampaign, ReplayIsByteIdenticalAcrossCheckpointResume) {
  const std::string data_dir = freshDir("trace_campaign_data");
  const std::string events_path = data_dir + "/t.events";
  {
    std::ofstream out(events_path);
    writeEventList(out, randomTrace(16, 24, 3, 0xCA4));
  }

  campaign::CampaignSpec spec;
  spec.protocols = {"flood", "anon_count"};
  spec.adversaries = {"trace"};
  spec.nodes = {16};
  spec.trace = events_path;
  spec.trace_policy = "mirror";
  spec.seed_count = 4;
  spec.seeds_per_shard = 2;
  spec.max_rounds = 4'000;

  const auto report = [&](const std::string& dir,
                          bool expect_resume_noop) -> std::string {
    campaign::CampaignOptions options;
    options.checkpoint_dir = dir;
    options.telemetry = false;
    const campaign::CampaignOutcome outcome =
        campaign::runCampaign(spec, options);
    EXPECT_TRUE(outcome.fullCoverage());
    if (expect_resume_noop) {
      EXPECT_EQ(outcome.completed_new, 0);
    }
    campaign::CheckpointStore store(dir);
    std::ostringstream out;
    campaign::writeReport(spec, store, out);
    return out.str();
  };

  const std::string dir1 = freshDir("trace_campaign_a");
  const std::string fresh = report(dir1, false);
  const std::string resumed = report(dir1, true);  // all shards checkpointed
  const std::string other = report(freshDir("trace_campaign_b"), false);
  EXPECT_EQ(fresh, resumed);
  EXPECT_EQ(fresh, other);
  // The report merges the per-trial series across both protocols' shards.
  EXPECT_NE(fresh.find("trial/all_done"), std::string::npos) << fresh;
  EXPECT_NE(fresh.find("\"campaign/trials\": 8"), std::string::npos) << fresh;
}

TEST(TraceCampaign, SpecValidationIsLoud) {
  expectLoudFailure(
      [] {
        campaign::CampaignSpec::parse(
            R"({"protocols":["flood"],"adversaries":["trace"],)"
            R"("nodes":[8],"seeds":{"count":1}})");
      },
      "needs a 'trace'");
  expectLoudFailure(
      [] {
        campaign::CampaignSpec::parse(
            R"({"protocols":["flood"],"adversaries":["static_path"],)"
            R"("nodes":[8],"seeds":{"count":1},"trace":"x.events"})");
      },
      "only the 'trace' adversary");
  expectLoudFailure(
      [] {
        campaign::CampaignSpec::parse(
            R"({"protocols":["flood"],"adversaries":["trace"],)"
            R"("nodes":[8],"seeds":{"count":1},"trace":"x.events",)"
            R"("trace_policy":"bounce"})");
      },
      "trace_policy");
}

TEST(TraceCampaign, ShardHashesWithoutTraceKeysAreUnchanged) {
  // The canonical JSON of a non-trace shard must not mention the new keys
  // at all — existing checkpoint directories address shards by this hash.
  campaign::ShardConfig shard;
  const std::string json = shard.canonicalJson();
  EXPECT_EQ(json.find("trace"), std::string::npos) << json;
  EXPECT_EQ(json.find("anonymous"), std::string::npos) << json;
  // Round-trip: parse of the canonical form reproduces the hash.
  campaign::ShardConfig back =
      campaign::parseShardConfig(obs::Json::parse(json));
  EXPECT_EQ(back.hash(), shard.hash());

  shard.adversary = "trace";
  shard.trace = "data.events";
  shard.anonymous = true;
  const std::string with = shard.canonicalJson();
  EXPECT_NE(with.find("\"trace\":\"data.events\""), std::string::npos) << with;
  EXPECT_NE(with.find("\"anonymous\":true"), std::string::npos) << with;
  campaign::ShardConfig back2 =
      campaign::parseShardConfig(obs::Json::parse(with));
  EXPECT_EQ(back2.hash(), shard.hash());
}

}  // namespace
}  // namespace dynet::dataset
