// Sensitivity tests tying the remaining §1 claims to executions:
//   * HEAR-FROM-N-NODES inherits the lower-bound dichotomy (a node claiming
//     hear-from-all within the horizon on a DISJ=0 composition must be
//     wrong — the |0,0 line's contributions cannot have arrived);
//   * known-D consensus is *simultaneous* (everyone decides in the same
//     round), connecting to Kuhn-Moses-Oshman [15], the paper's only
//     previously-known diameter-sensitive problem;
//   * a bootstrap estimate from the counting protocol satisfies the §7
//     promise and feeds leader election end-to-end.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/dynamic_adversaries.h"
#include "lowerbound/composition.h"
#include "protocols/consensus_known_d.h"
#include "protocols/counting.h"
#include "protocols/hear_from_n.h"
#include "protocols/leader_unknown_d.h"
#include "protocols/majority.h"
#include "sim/engine.h"

namespace dynet {
namespace {

using sim::NodeId;
using sim::Round;

TEST(HearFromNSensitivity, CannotTruthfullyClaimWithinHorizonOnDisjZero) {
  // Run the counting/hear-from-N machinery on the Theorem 6 composition
  // with DISJ = 0: A_Γ's cardinality estimate at the horizon must fall
  // short of N (the line middles' exponentials are causally out of reach),
  // so any protocol claiming hear-from-all by then is incorrect — the
  // paper's "results also carry over to HEAR-FROM-N-NODES".
  util::Rng rng(3);
  const cc::Instance inst = cc::randomInstance(2, 31, rng, 0);
  const lb::CFloodNetwork network(inst);
  const NodeId n = network.numNodes();
  const int k = 96;
  proto::HearFromNFactory factory(k, network.horizon(), 5, /*epsilon=*/0.02);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = network.horizon();
  config.stop_when_all_done = false;
  sim::Engine engine(std::move(ps), network.referenceAdversary(), config, 5);
  engine.run();
  const auto* source =
      dynamic_cast<const proto::HearFromNProcess*>(&engine.process(network.source()));
  ASSERT_NE(source, nullptr);
  // The estimate misses at least the unreachable line (and in practice much
  // more, since the horizon is also short for dissemination).
  EXPECT_LT(source->estimate(),
            static_cast<double>(n) -
                static_cast<double>(network.gamma().zeroLineMids().size()) / 2);
}

TEST(HearFromNSensitivity, SucceedsGivenTimeProportionalToRealDiameter) {
  // Same network, but with a budget matched to the true Ω(q) diameter the
  // problem becomes solvable — the cost IS the diameter uncertainty.
  util::Rng rng(4);
  const cc::Instance inst = cc::randomInstance(1, 15, rng, 0);
  const lb::CFloodNetwork network(inst);
  const NodeId n = network.numNodes();
  const int k = 128;
  const Round budget = proto::countingRounds(k, 3 * inst.q, n, 2);
  proto::HearFromNFactory factory(k, budget, 7, /*epsilon=*/0.25);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = budget;
  config.stop_when_all_done = false;
  sim::Engine engine(std::move(ps), network.referenceAdversary(), config, 7);
  engine.run();
  const auto* source =
      dynamic_cast<const proto::HearFromNProcess*>(&engine.process(network.source()));
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->output(), 1u);
}

TEST(SimultaneousConsensus, KnownDiameterDecidesInLockstep) {
  // Known-D consensus decides at a publicly computable round, so every
  // node's done_round coincides: simultaneity for free — matching [15]'s
  // observation that with known D, simultaneous consensus is easy, and it
  // is *unknown* D that makes it (and now all these problems) expensive.
  const NodeId n = 40;
  std::vector<std::uint64_t> inputs(static_cast<std::size_t>(n), 0);
  inputs[3] = 1;
  proto::ConsensusKnownDFactory factory(inputs, /*diameter=*/9);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = proto::knownDRounds(9, n) + 2;
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::RandomTreeAdversary>(n, 6), config, 6);
  const auto result = engine.run();
  ASSERT_TRUE(result.all_done);
  for (NodeId v = 1; v < n; ++v) {
    EXPECT_EQ(result.done_round[static_cast<std::size_t>(v)],
              result.done_round[0])
        << "node " << v << " decided in a different round";
  }
}

TEST(BootstrapPipeline, CountingEstimateFeedsLeaderElection) {
  const NodeId n = 64;
  const double c = 0.25;
  // Phase 1: estimate with known D on a churning tree.
  const int k = 192;
  const Round est_rounds = proto::countingRounds(k, 10, n, 3);
  proto::CountingFactory counting(k, est_rounds, 21);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(counting.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = est_rounds + 1;
  sim::Engine estimator(std::move(ps),
                        std::make_unique<adv::RandomTreeAdversary>(n, 21),
                        config, 21);
  estimator.run();
  const auto* p0 =
      dynamic_cast<const proto::CountingProcess*>(&estimator.process(0));
  ASSERT_NE(p0, nullptr);
  const double n_estimate = p0->estimate();
  ASSERT_TRUE(proto::validEstimate(n_estimate, n, c))
      << "estimate " << n_estimate << " outside promise for N=" << n;

  // Phase 2: leader election with unknown D using that estimate.
  proto::LeaderConfig leader_config;
  leader_config.n_estimate = n_estimate;
  leader_config.c = c;
  leader_config.k = 64;
  proto::LeaderElectFactory leader(leader_config, 22);
  ps.clear();
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(leader.create(v, n));
  }
  sim::EngineConfig config2;
  config2.max_rounds = 5'000'000;
  sim::Engine election(std::move(ps),
                       std::make_unique<adv::ShufflePathAdversary>(n, 23),
                       config2, 23);
  const auto result = election.run();
  ASSERT_TRUE(result.all_done);
  for (NodeId v = 0; v < n; ++v) {
    EXPECT_EQ(election.process(v).output(), static_cast<std::uint64_t>(n));
  }
}

}  // namespace
}  // namespace dynet
