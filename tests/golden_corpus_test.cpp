// Golden-corpus regression: canonical run digests pinned to files.
//
// One canonical run per protocol family plus one per lower-bound
// construction (Γ = CFloodNetwork, Λ = ConsensusNetwork on a DISJ=1
// instance, Υ = ConsensusNetwork on a DISJ=0 instance).  Each run's
// artifacts — RunResult fields, per-node state digests, and an FNV-1a
// digest of the serialized trace — are written as key=value lines and
// compared byte-for-byte against `tests/golden/<name>.golden`.
//
// Unlike the differential fuzz test (which compares two engine paths
// against each other and so would miss a bug that breaks both the same
// way), the corpus pins today's behaviour against the repository history:
// any engine, protocol, adversary, or trace-format change that shifts a
// canonical run fails here with a readable key-level diff.
//
// Regenerate intentionally with scripts/regen_golden.sh (which runs this
// binary with DYNET_REGEN_GOLDEN=1) and commit the .golden diff alongside
// the change that explains it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/churn_adversaries.h"
#include "adversary/dynamic_adversaries.h"
#include "adversary/static_adversaries.h"
#include "adversary/trace_adversary.h"
#include "cc/disjointness_cp.h"
#include "dataset/compiled_format.h"
#include "dataset/text_format.h"
#include "dataset/trace.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "lowerbound/composition.h"
#include "lowerbound/distance_lb.h"
#include "net/graph.h"
#include "protocols/cflood.h"
#include "protocols/counting.h"
#include "protocols/diameter_approx.h"
#include "protocols/distance_bfs.h"
#include "protocols/flood.h"
#include "protocols/gossip.h"
#include "protocols/hear_from_n.h"
#include "protocols/max_flood.h"
#include "protocols/oracles.h"
#include "protocols/resilient_flood.h"
#include "sim/engine.h"
#include "sim/trace.h"
#include "util/rng.h"

#ifndef DYNET_GOLDEN_DIR
#error "DYNET_GOLDEN_DIR must point at tests/golden"
#endif

namespace dynet {
namespace {

/// FNV-1a over the serialized trace.  Deliberately not std::hash (which is
/// implementation-defined and may differ across standard libraries): the
/// .golden files must mean the same bytes on every toolchain.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char ch : s) {
    h ^= ch;
    h *= 1099511628211ull;
  }
  return h;
}

template <typename T>
std::string joined(const std::vector<T>& xs) {
  std::ostringstream out;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out << (i == 0 ? "" : ",") << xs[i];
  }
  return out.str();
}

/// The canonical artifact rendering: stable key=value lines, one per
/// field, so a golden mismatch reads as a field-level diff in gtest
/// output rather than an opaque hash flip.
std::string renderArtifacts(sim::Engine& engine, const sim::RunResult& r) {
  std::ostringstream out;
  out << "rounds_executed=" << r.rounds_executed << "\n";
  out << "all_done=" << (r.all_done ? 1 : 0) << "\n";
  out << "all_done_round=" << r.all_done_round << "\n";
  out << "done_round=" << joined(r.done_round) << "\n";
  out << "messages_sent=" << r.messages_sent << "\n";
  out << "bits_sent=" << r.bits_sent << "\n";
  out << "bits_per_node=" << joined(r.bits_per_node) << "\n";
  out << "max_bits_per_node=" << r.max_bits_per_node << "\n";
  out << "bits_per_round=" << joined(r.bits_per_round) << "\n";
  out << "crashes=" << r.crashes << "\n";
  out << "restarts=" << r.restarts << "\n";
  out << "messages_dropped=" << r.messages_dropped << "\n";
  out << "messages_corrupted=" << r.messages_corrupted << "\n";
  std::uint64_t state = 1469598103934665603ull;
  for (sim::NodeId v = 0; v < engine.numNodes(); ++v) {
    state = util::hashCombine(state, engine.stateDigest(v));
  }
  out << "state_digest=" << state << "\n";
  std::ostringstream trace;
  sim::writeTrace(trace, sim::traceFromEngine(engine));
  out << "trace_fnv1a=" << fnv1a(trace.str()) << "\n";
  return out.str();
}

sim::EngineConfig canonicalConfig(sim::Round rounds) {
  sim::EngineConfig config;
  config.max_rounds = rounds;
  config.record_topologies = true;
  config.record_actions = true;
  config.stop_when_all_done = false;
  return config;
}

std::string runCanonical(const sim::ProcessFactory& factory,
                         std::unique_ptr<sim::Adversary> adversary,
                         sim::Round rounds, std::uint64_t seed,
                         const faults::FaultConfig* fc = nullptr,
                         bool duplex = false) {
  const sim::NodeId n = adversary->numNodes();
  // Factory construction takes the shipping default path (soa_state ON for
  // factories with an SoA model), so the .golden files pin the SoA engine
  // against the repository history, not just the legacy object path.
  sim::EngineConfig config = canonicalConfig(rounds);
  config.duplex = duplex;
  sim::Engine engine(factory, std::move(adversary), config, seed);
  if (fc != nullptr) {
    engine.setFaultInjector(std::make_shared<const faults::FaultInjector>(
        faults::FaultPlan(n, *fc, seed ^ 0xFA), &factory));
  }
  const sim::RunResult r = engine.run();
  return renderArtifacts(engine, r);
}

/// Compares `rendered` against DYNET_GOLDEN_DIR/<name>.golden, or rewrites
/// the file when DYNET_REGEN_GOLDEN is set.
void expectGolden(const std::string& name, const std::string& rendered) {
  const std::string path = std::string(DYNET_GOLDEN_DIR) + "/" + name + ".golden";
  if (std::getenv("DYNET_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << rendered;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run scripts/regen_golden.sh";
  std::stringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), rendered)
      << "canonical run drifted from " << path
      << " — if intentional, regenerate via scripts/regen_golden.sh and "
         "commit the diff";
}

// ------------------------------------------------------------- protocols

TEST(GoldenCorpus, FloodDeterministicOnEdgeChurn) {
  proto::FloodFactory factory(0, 0x2a, 8, proto::FloodMode::kDeterministic,
                              /*halt_round=*/40);
  expectGolden("flood_det_edge_churn",
               runCanonical(factory,
                            std::make_unique<adv::EdgeChurnAdversary>(20, 2, 7),
                            /*rounds=*/48, /*seed=*/0xA001));
}

TEST(GoldenCorpus, FloodRandomizedOnRandomGraph) {
  proto::FloodFactory factory(0, 0x2a, 8, proto::FloodMode::kRandomized,
                              /*halt_round=*/40);
  expectGolden(
      "flood_rand_random_graph",
      runCanonical(factory,
                   std::make_unique<adv::RandomGraphAdversary>(18, 0.4, 5),
                   /*rounds=*/48, /*seed=*/0xA002));
}

TEST(GoldenCorpus, MaxFloodOnRotatingStar) {
  std::vector<std::uint64_t> values;
  for (int v = 0; v < 16; ++v) {
    values.push_back(static_cast<std::uint64_t>((v * 37 + 11) % 100));
  }
  proto::MaxFloodFactory factory(values, 8, /*total_rounds=*/40);
  expectGolden("max_flood_rotating_star",
               runCanonical(factory,
                            std::make_unique<adv::RotatingStarAdversary>(16),
                            /*rounds=*/48, /*seed=*/0xA003));
}

TEST(GoldenCorpus, CFloodOnShufflePath) {
  proto::CFloodFactory factory(0, 0x15, 8, proto::FloodMode::kDeterministic,
                               /*wait_rounds=*/15);
  expectGolden("cflood_shuffle_path",
               runCanonical(factory,
                            std::make_unique<adv::ShufflePathAdversary>(16, 3),
                            /*rounds=*/40, /*seed=*/0xA004));
}

TEST(GoldenCorpus, CountingOnIntervalAdversary) {
  proto::CountingFactory factory(/*k=*/2, /*total_rounds=*/60,
                                 /*master_seed=*/0xC0);
  expectGolden("counting_interval",
               runCanonical(factory,
                            std::make_unique<adv::IntervalAdversary>(12, 6, 4),
                            /*rounds=*/60, /*seed=*/0xA005));
}

TEST(GoldenCorpus, HearFromNOnAnchoredStar) {
  proto::HearFromNFactory factory(/*k=*/8, /*max_rounds=*/60,
                                  /*master_seed=*/0xB1, /*epsilon=*/0.1);
  expectGolden("hear_from_n_anchored_star",
               runCanonical(factory,
                            std::make_unique<adv::AnchoredStarAdversary>(14, 6),
                            /*rounds=*/60, /*seed=*/0xA006));
}

TEST(GoldenCorpus, GossipOnRandomTree) {
  proto::GossipFactory factory(/*total_tokens=*/4, /*total_rounds=*/56);
  expectGolden("gossip_random_tree",
               runCanonical(factory,
                            std::make_unique<adv::RandomTreeAdversary>(14, 8),
                            /*rounds=*/56, /*seed=*/0xA007));
}

TEST(GoldenCorpus, BabblerUnderFaults) {
  proto::RandomBabblerFactory factory(20);
  faults::FaultConfig fc;
  fc.drop_prob = 0.2;
  fc.corrupt_prob = 0.1;
  fc.deliver_corrupted = true;
  fc.crash_fraction = 0.25;
  fc.crash_window = 24;
  fc.restart = true;
  fc.restart_downtime = 8;
  expectGolden(
      "babbler_faulted_random_graph",
      runCanonical(factory,
                   std::make_unique<adv::RandomGraphAdversary>(16, 0.5, 9),
                   /*rounds=*/48, /*seed=*/0xA008, &fc));
}

// ------------------------------------------- distance protocols (duplex)

// The diam_* runs pin the full-duplex delivery path (EngineConfig::duplex)
// against the repository history — none of the other corpus entries reach
// it — together with the gadget constructions they are designed to decide.

TEST(GoldenCorpus, DiamExactOnAchGadget) {
  const lb::AchBitGadget gadget(20, /*width=*/0, /*seed=*/0xD1,
                                /*intersect=*/true);
  proto::DiamExactFactory factory;
  expectGolden(
      "diam_exact_ach_gadget",
      runCanonical(factory,
                   std::make_unique<adv::StaticAdversary>(gadget.graph()),
                   /*rounds=*/proto::DiamExactProcess::scheduleRounds(20) + 1,
                   /*seed=*/0xA00A, nullptr, /*duplex=*/true));
}

TEST(GoldenCorpus, Diam2ApproxOnBkGadget) {
  const lb::BkApproxGadget gadget(24, /*width=*/0, /*stretch=*/1,
                                  /*seed=*/0xD2, /*orthogonal=*/false);
  proto::Diam2ApproxFactory factory(0);
  expectGolden(
      "diam_2approx_bk_gadget",
      runCanonical(factory,
                   std::make_unique<adv::StaticAdversary>(gadget.graph()),
                   /*rounds=*/proto::Diam2ApproxProcess::scheduleRounds(24) + 1,
                   /*seed=*/0xA00B, nullptr, /*duplex=*/true));
}

TEST(GoldenCorpus, Diam32ApproxOnTorus) {
  proto::Diam32ApproxFactory factory(/*seed=*/0xD3);
  expectGolden(
      "diam_32approx_torus",
      runCanonical(
          factory,
          std::make_unique<adv::StaticAdversary>(net::makeTorus(4, 5)),
          /*rounds=*/proto::Diam32ApproxProcess::scheduleRounds(20) + 1,
          /*seed=*/0xA00C, nullptr, /*duplex=*/true));
}

// ------------------------------------------------------ dataset replay

// Pins the full dataset pipeline against the repository history: text
// parse of the committed fixture (label interning, interval merging,
// bucketing), compilation to the delta timeline, the content hash of the
// canonical serialization, and a flood replay through TraceAdversary.
// Any drift in parser semantics, compiled layout, or replay order fails
// here even if text and cache paths drift together (which the
// differential checks cannot see).
TEST(GoldenCorpus, TraceReplayFixture) {
  const std::string path =
      std::string(DYNET_GOLDEN_DIR) + "/fixture.events";
  // Parse straight from text — no sidecar cache read/write, so the golden
  // dir stays pristine and the rendering exercises the parser every run.
  const dataset::CompiledTrace trace =
      dataset::compile(dataset::parseEventListFile(path));
  std::ostringstream out;
  out << "num_nodes=" << trace.num_nodes << "\n";
  out << "num_rounds=" << trace.rounds << "\n";
  out << "content_hash=" << dataset::contentHash(trace) << "\n";
  auto shared = std::make_shared<const dataset::CompiledTrace>(trace);
  adv::TraceReplayOptions options;
  options.policy = adv::TraceReplayOptions::EndPolicy::kMirror;
  proto::FloodFactory factory(0, 0x2a, 8, proto::FloodMode::kDeterministic,
                              /*halt_round=*/40);
  out << runCanonical(factory,
                      std::make_unique<adv::TraceAdversary>(shared, options),
                      /*rounds=*/48, /*seed=*/0xA009);
  expectGolden("trace_replay_fixture", out.str());
}

// ------------------------------------------- lower-bound constructions

std::string runLowerBoundReference(std::unique_ptr<sim::Adversary> adversary,
                                   sim::Round rounds, std::uint64_t seed) {
  proto::RandomBabblerFactory babbler(24);
  return runCanonical(babbler, std::move(adversary), rounds, seed);
}

TEST(GoldenCorpus, GammaCFloodNetworkReferenceRun) {
  util::Rng rng(31);
  const cc::Instance inst = cc::randomInstance(2, 9, rng, /*force=*/1);
  const lb::CFloodNetwork network(inst);
  expectGolden("gamma_cflood_network",
               runLowerBoundReference(network.referenceAdversary(),
                                      network.horizon(), /*seed=*/0xB001));
}

TEST(GoldenCorpus, LambdaConsensusNetworkDisj1ReferenceRun) {
  util::Rng rng(33);
  const cc::Instance inst = cc::randomInstance(2, 9, rng, /*force=*/1);
  const lb::ConsensusNetwork network(inst);
  expectGolden("lambda_consensus_network_disj1",
               runLowerBoundReference(network.referenceAdversary(),
                                      network.horizon(), /*seed=*/0xB002));
}

TEST(GoldenCorpus, UpsilonConsensusNetworkDisj0ReferenceRun) {
  util::Rng rng(35);
  const cc::Instance inst = cc::randomInstance(2, 9, rng, /*force=*/0);
  const lb::ConsensusNetwork network(inst);
  expectGolden("upsilon_consensus_network_disj0",
               runLowerBoundReference(network.referenceAdversary(),
                                      network.horizon(), /*seed=*/0xB003));
}

}  // namespace
}  // namespace dynet
