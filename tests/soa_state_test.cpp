// Structure-of-arrays state store: differential pins against the object
// path (PR: SoA state + many-worlds lanes).
//
// Four layers of evidence that EngineConfig::soa_state changes HOW the
// engine executes a round, never WHAT it computes:
//
//   * per-round lockstep: object and SoA engines stepped side by side must
//     agree on every node's stateDigest / done / output after EVERY round,
//     across the protocol x adversary grid — a much tighter pin than
//     end-of-run equality (a transient divergence that happens to
//     re-converge would still fail here);
//   * crash masks: the same lockstep under crash + restart fault plans,
//     so FaultPhase's liveness bookkeeping (including SoAModel::resetNode
//     on restart) is compared round by round, plus full fault accounting;
//   * fast paths: the no-liveness-fault FaultPhase skip (zero plans and
//     drop/corrupt-only plans) and the strided node_threads worker loop
//     must be byte-identical to their general/serial counterparts — the
//     strided case is the designated TSan target (.github/workflows/ci.yml
//     runs this binary with DYNET_THREADS=4 under -fsanitize=thread);
//   * many-worlds lanes: each of the 64 bit-packed flood trials of
//     protocols/manyworlds.h must reproduce its scalar engine run bit for
//     bit — RunResult, per-node token state, state digests — including a
//     partial final lane group, and BatchRunner::runLanes must merge lane
//     metrics into exactly the TrialSummary of the scalar BatchRunner::run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adversary/churn_adversaries.h"
#include "adversary/dynamic_adversaries.h"
#include "adversary/static_adversaries.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "net/graph.h"
#include "obs/sink.h"
#include "protocols/flood.h"
#include "protocols/gossip.h"
#include "protocols/manyworlds.h"
#include "protocols/max_flood.h"
#include "sim/batch.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace dynet::sim {
namespace {

std::unique_ptr<ProcessFactory> makeProtocol(int kind, NodeId n,
                                             Round rounds) {
  switch (kind) {
    case 0:
      return std::make_unique<proto::FloodFactory>(
          0, 0x2a, 8, proto::FloodMode::kDeterministic, rounds / 2);
    case 1:
      return std::make_unique<proto::FloodFactory>(
          0, 0x2a, 8, proto::FloodMode::kRandomized, rounds / 2);
    case 2: {
      std::vector<std::uint64_t> values;
      for (NodeId v = 0; v < n; ++v) {
        values.push_back(static_cast<std::uint64_t>((v * 37 + 11) % 100));
      }
      return std::make_unique<proto::MaxFloodFactory>(std::move(values), 8,
                                                      rounds);
    }
    default:
      return std::make_unique<proto::GossipFactory>(/*total_tokens=*/6,
                                                    rounds);
  }
}

std::unique_ptr<Adversary> makeAdversary(int kind, NodeId n,
                                         std::uint64_t seed) {
  switch (kind) {
    case 0:
      return std::make_unique<adv::RotatingStarAdversary>(n);
    case 1:
      return std::make_unique<adv::EdgeChurnAdversary>(n, 2, seed);
    default:
      return std::make_unique<adv::RandomGraphAdversary>(n, 0.4, seed);
  }
}

void expectSameResult(const RunResult& a, const RunResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.rounds_executed, b.rounds_executed) << what;
  EXPECT_EQ(a.all_done, b.all_done) << what;
  EXPECT_EQ(a.all_done_round, b.all_done_round) << what;
  EXPECT_EQ(a.done_round, b.done_round) << what;
  EXPECT_EQ(a.messages_sent, b.messages_sent) << what;
  EXPECT_EQ(a.bits_sent, b.bits_sent) << what;
  EXPECT_EQ(a.bits_per_node, b.bits_per_node) << what;
  EXPECT_EQ(a.max_bits_per_node, b.max_bits_per_node) << what;
  EXPECT_EQ(a.bits_per_round, b.bits_per_round) << what;
  EXPECT_EQ(a.crashes, b.crashes) << what;
  EXPECT_EQ(a.restarts, b.restarts) << what;
  EXPECT_EQ(a.messages_dropped, b.messages_dropped) << what;
  EXPECT_EQ(a.messages_corrupted, b.messages_corrupted) << what;
}

struct LockstepSpec {
  NodeId n = 14;
  Round rounds = 40;
  int protocol = 0;
  int adversary = 0;
  std::uint64_t seed = 0;
  const faults::FaultConfig* fc = nullptr;
  int node_threads = 1;
};

/// Steps an object engine and an SoA engine through the same run, failing
/// on the first round where any node's digest / done / output diverges.
void runLockstep(const LockstepSpec& s) {
  const std::unique_ptr<ProcessFactory> factory =
      makeProtocol(s.protocol, s.n, s.rounds);
  EngineConfig object_cfg;
  object_cfg.max_rounds = s.rounds;
  object_cfg.stop_when_all_done = false;
  object_cfg.check_connectivity = false;
  object_cfg.soa_state = false;
  EngineConfig soa_cfg = object_cfg;
  soa_cfg.soa_state = true;
  soa_cfg.node_threads = s.node_threads;

  Engine object_engine(*factory, makeAdversary(s.adversary, s.n, s.seed),
                       object_cfg, s.seed);
  Engine soa_engine(*factory, makeAdversary(s.adversary, s.n, s.seed),
                    soa_cfg, s.seed);
  ASSERT_FALSE(object_engine.soaActive());
  ASSERT_TRUE(soa_engine.soaActive())
      << "protocol " << s.protocol << " lacks an SoA model";
  if (s.fc != nullptr) {
    const faults::FaultPlan plan(s.n, *s.fc, s.seed ^ 0xFA);
    object_engine.setFaultInjector(
        std::make_shared<const faults::FaultInjector>(plan, factory.get()));
    soa_engine.setFaultInjector(
        std::make_shared<const faults::FaultInjector>(plan, factory.get()));
  }
  for (Round r = 1; r <= s.rounds; ++r) {
    ASSERT_TRUE(object_engine.step());
    ASSERT_TRUE(soa_engine.step());
    for (NodeId v = 0; v < s.n; ++v) {
      ASSERT_EQ(object_engine.stateDigest(v), soa_engine.stateDigest(v))
          << "round " << r << " node " << v << " protocol " << s.protocol
          << " adversary " << s.adversary << " seed " << s.seed;
      ASSERT_EQ(object_engine.nodeDone(v), soa_engine.nodeDone(v))
          << "round " << r << " node " << v;
      ASSERT_EQ(object_engine.nodeOutput(v), soa_engine.nodeOutput(v))
          << "round " << r << " node " << v;
    }
    ASSERT_EQ(object_engine.allDone(), soa_engine.allDone()) << "round " << r;
  }
  expectSameResult(object_engine.result(), soa_engine.result(),
                   "protocol " + std::to_string(s.protocol) + " adversary " +
                       std::to_string(s.adversary));
}

TEST(SoAState, PerRoundDigestLockstepAcrossProtocolsAndAdversaries) {
  for (int protocol = 0; protocol < 4; ++protocol) {
    for (int adversary = 0; adversary < 3; ++adversary) {
      for (std::uint64_t seed : {0x51ull, 0x52ull}) {
        LockstepSpec s;
        s.protocol = protocol;
        s.adversary = adversary;
        s.seed = seed;
        runLockstep(s);
        if (HasFatalFailure()) {
          return;
        }
      }
    }
  }
}

TEST(SoAState, CrashMasksConsistentUnderFaultPlans) {
  faults::FaultConfig fc;
  fc.crash_fraction = 0.3;
  fc.crash_window = 16;
  fc.restart = true;
  fc.restart_downtime = 6;
  fc.drop_prob = 0.15;
  fc.corrupt_prob = 0.1;
  // MaxFlood decodes arbitrary payloads, so mangled deliveries may arrive.
  fc.deliver_corrupted = true;
  for (int adversary = 0; adversary < 3; ++adversary) {
    for (std::uint64_t seed : {0x61ull, 0x62ull, 0x63ull}) {
      LockstepSpec s;
      s.protocol = 2;  // max_flood
      s.adversary = adversary;
      s.seed = seed;
      s.fc = &fc;
      runLockstep(s);
      if (HasFatalFailure()) {
        return;
      }
    }
  }
  // Gossip under crash/restart (but pristine payloads): exercises
  // SoAModel::resetNode's re-seeding of the held-token bitset.
  faults::FaultConfig crash_only = fc;
  crash_only.drop_prob = 0;
  crash_only.corrupt_prob = 0;
  crash_only.deliver_corrupted = false;
  LockstepSpec s;
  s.protocol = 3;
  s.adversary = 1;
  s.seed = 0x64;
  s.fc = &crash_only;
  runLockstep(s);
}

// Satellite pin: FaultPhase skips the per-trial liveness-mask re-init when
// the plan cannot affect liveness.  A zero plan and a drop/corrupt-only
// plan must both stay byte-identical to the general path — and the zero
// plan must match a run with no injector at all.
TEST(SoAState, NoLivenessFaultPlansAreByteIdentical) {
  const NodeId n = 14;
  const Round rounds = 40;
  const std::unique_ptr<ProcessFactory> factory = makeProtocol(2, n, rounds);
  const auto run = [&](const faults::FaultConfig* fc, bool soa) {
    EngineConfig cfg;
    cfg.max_rounds = rounds;
    cfg.stop_when_all_done = false;
    cfg.check_connectivity = false;
    cfg.soa_state = soa;
    Engine engine(*factory, makeAdversary(1, n, 0x71), cfg, 0x71);
    if (fc != nullptr) {
      engine.setFaultInjector(std::make_shared<const faults::FaultInjector>(
          faults::FaultPlan(n, *fc, 0x71 ^ 0xFA), factory.get()));
    }
    RunResult result = engine.run();
    std::vector<std::uint64_t> digests;
    for (NodeId v = 0; v < n; ++v) {
      digests.push_back(engine.stateDigest(v));
    }
    return std::make_pair(std::move(result), std::move(digests));
  };

  const faults::FaultConfig zero_plan;  // all-zero: no faults at all
  faults::FaultConfig drop_only;
  drop_only.drop_prob = 0.2;
  drop_only.corrupt_prob = 0.1;
  drop_only.deliver_corrupted = true;

  const auto clean = run(nullptr, true);
  for (const bool soa : {false, true}) {
    const auto zero = run(&zero_plan, soa);
    expectSameResult(clean.first, zero.first, "zero plan soa=" +
                                                  std::to_string(soa));
    EXPECT_EQ(clean.second, zero.second) << "zero plan soa=" << soa;
  }
  // Drop-only plans take the mask-skip path yet still drop messages; the
  // object and SoA engines must agree exactly.
  const auto drop_object = run(&drop_only, false);
  const auto drop_soa = run(&drop_only, true);
  expectSameResult(drop_object.first, drop_soa.first, "drop-only plan");
  EXPECT_EQ(drop_object.second, drop_soa.second) << "drop-only plan";
  EXPECT_GT(drop_soa.first.messages_dropped, 0u)
      << "drop-only plan dropped nothing — the regression pin is vacuous";
}

// The strided worker loop (node_threads > 1) must be byte-identical to the
// serial loop.  CI runs this test under TSan to race-check the stride.
TEST(SoAState, StridedWorkersMatchSerial) {
  for (int protocol = 0; protocol < 4; ++protocol) {
    for (const int node_threads : {4, 0}) {
      LockstepSpec s;
      s.n = 48;
      s.protocol = protocol;
      s.adversary = 2;
      s.seed = 0x81;
      s.node_threads = node_threads;  // object leg stays serial
      runLockstep(s);
      if (HasFatalFailure()) {
        return;
      }
    }
  }
}

// ------------------------------------------------------- many-worlds lanes

net::TopologySeq rotatingStarCycle(NodeId n) {
  net::TopologySeq cycle;
  for (NodeId c = 0; c < n; ++c) {
    cycle.push_back(net::makeStar(n, c));
  }
  return cycle;
}

struct ScalarFloodRun {
  RunResult result;
  std::vector<char> has_token;
  std::vector<Round> token_round;
};

ScalarFloodRun runScalarFlood(const proto::ManyWorldsFloodSpec& spec,
                              const net::TopologySeq& cycle,
                              std::uint64_t seed) {
  proto::FloodFactory factory(spec.source, spec.token, spec.token_bits,
                              spec.mode, spec.halt_round);
  EngineConfig cfg;
  cfg.max_rounds = spec.max_rounds;
  cfg.stop_when_all_done = spec.stop_when_all_done;
  cfg.soa_state = false;  // the reference leg is the classic object engine
  Engine engine(factory, std::make_unique<adv::PeriodicAdversary>(cycle), cfg,
                seed);
  ScalarFloodRun run;
  run.result = engine.run();
  for (NodeId v = 0; v < spec.num_nodes; ++v) {
    const auto& p =
        dynamic_cast<const proto::FloodProcess&>(engine.process(v));
    run.has_token.push_back(p.hasToken() ? 1 : 0);
    run.token_round.push_back(p.tokenRound());
  }
  return run;
}

TEST(ManyWorlds, LaneMatchesScalarEngineBitForBit) {
  proto::ManyWorldsFloodSpec spec;
  spec.num_nodes = 12;
  spec.source = 0;
  spec.token = 0x2a;
  spec.token_bits = 8;
  spec.mode = proto::FloodMode::kRandomized;
  spec.halt_round = 24;
  spec.max_rounds = 24;
  const net::TopologySeq cycle = rotatingStarCycle(spec.num_nodes);
  const std::uint64_t base_seed = 0xBEEF;

  // 96 trials in groups of 64: one full lane word plus a 32-lane partial
  // group, exercising the sub-word mask path.
  constexpr int kTrials = 96;
  std::size_t first = 0;
  while (first < kTrials) {
    const int lanes = static_cast<int>(
        std::min<std::size_t>(64, kTrials - first));
    const std::vector<proto::ManyWorldsLane> group =
        proto::runManyWorldsFlood(spec, cycle, base_seed, first, lanes);
    ASSERT_EQ(group.size(), static_cast<std::size_t>(lanes));
    for (int l = 0; l < lanes; ++l) {
      const std::uint64_t seed =
          util::hashCombine(base_seed, first + static_cast<std::size_t>(l));
      const ScalarFloodRun scalar = runScalarFlood(spec, cycle, seed);
      const proto::ManyWorldsLane& lane = group[static_cast<std::size_t>(l)];
      expectSameResult(scalar.result, lane.result,
                       "trial " + std::to_string(first + l));
      EXPECT_EQ(scalar.has_token, lane.has_token)
          << "trial " << first + l;
      EXPECT_EQ(scalar.token_round, lane.token_round)
          << "trial " << first + l;
      // Digest-level equivalence via the shared floodStateDigest helper.
      for (NodeId v = 0; v < spec.num_nodes; ++v) {
        const auto vi = static_cast<std::size_t>(v);
        EXPECT_EQ(proto::floodStateDigest(v, scalar.has_token[vi] != 0,
                                          scalar.token_round[vi]),
                  proto::floodStateDigest(v, lane.has_token[vi] != 0,
                                          lane.token_round[vi]))
            << "trial " << first + l << " node " << v;
      }
      if (HasFailure()) {
        return;
      }
    }
    first += static_cast<std::size_t>(lanes);
  }
}

TEST(ManyWorlds, RunLanesSummaryMatchesScalarBatch) {
  proto::ManyWorldsFloodSpec spec;
  spec.num_nodes = 10;
  spec.source = 0;
  spec.token = 0x2a;
  spec.token_bits = 8;
  spec.mode = proto::FloodMode::kRandomized;
  spec.halt_round = 20;
  spec.max_rounds = 20;
  const net::TopologySeq cycle = rotatingStarCycle(spec.num_nodes);
  const std::uint64_t base_seed = 0xCAFE;
  constexpr int kTrials = 96;  // partial final lane group

  BatchOptions options;
  options.threads = 1;
  BatchRunner scalar_runner(options);
  const MetricId m_msgs = scalar_runner.metricId("messages_sent");
  const MetricId m_reached = scalar_runner.metricId("nodes_reached");
  TrialSamples scalar_samples;
  scalar_runner.run(
      kTrials, base_seed,
      [&](std::uint64_t seed, EngineWorkspace& /*ws*/, TrialRecorder& rec) {
        const ScalarFloodRun run = runScalarFlood(spec, cycle, seed);
        rec.set(m_msgs, static_cast<double>(run.result.messages_sent));
        double reached = 0;
        for (const char h : run.has_token) {
          reached += h != 0 ? 1 : 0;
        }
        rec.set(m_reached, reached);
      },
      &scalar_samples);

  BatchRunner lane_runner(options);
  const MetricId l_msgs = lane_runner.metricId("messages_sent");
  const MetricId l_reached = lane_runner.metricId("nodes_reached");
  TrialSamples lane_samples;
  lane_runner.runLanes(
      kTrials, /*lane_width=*/64,
      [&](std::size_t first_trial, int lanes, LaneRecorder& rec) {
        const std::vector<proto::ManyWorldsLane> group =
            proto::runManyWorldsFlood(spec, cycle, base_seed, first_trial,
                                      lanes);
        for (int l = 0; l < lanes; ++l) {
          const proto::ManyWorldsLane& lane =
              group[static_cast<std::size_t>(l)];
          rec.set(l, l_msgs,
                  static_cast<double>(lane.result.messages_sent));
          double reached = 0;
          for (const char h : lane.has_token) {
            reached += h != 0 ? 1 : 0;
          }
          rec.set(l, l_reached, reached);
        }
      },
      &lane_samples);

  // Raw per-trial samples (trial order) must agree exactly — the summary
  // then agrees by construction.
  EXPECT_EQ(scalar_samples.metrics, lane_samples.metrics);
}

TEST(ManyWorlds, LaneOccupancy) {
  EXPECT_DOUBLE_EQ(proto::manyWorldsLaneOccupancy(64, 64), 1.0);
  EXPECT_DOUBLE_EQ(proto::manyWorldsLaneOccupancy(128, 64), 1.0);
  EXPECT_DOUBLE_EQ(proto::manyWorldsLaneOccupancy(96, 64), 0.75);
  EXPECT_DOUBLE_EQ(proto::manyWorldsLaneOccupancy(1, 64), 1.0 / 64.0);
  EXPECT_DOUBLE_EQ(proto::manyWorldsLaneOccupancy(10, 10), 10.0 / 64.0);
}

// runLanes records the lane-packing shape under the reserved soa// prefix
// when BatchOptions carries a sink; the occupancy gauge must agree with
// proto::manyWorldsLaneOccupancy so the two definitions cannot drift.
TEST(ManyWorlds, RunLanesEmitsShapeGauges) {
  obs::MetricsSink sink;
  BatchOptions options;
  options.threads = 1;
  options.sink = &sink;
  BatchRunner runner(options);
  const MetricId m = runner.metricId("noop");
  runner.runLanes(/*trials=*/96, /*lane_width=*/64,
                  [&](std::size_t, int lanes, LaneRecorder& rec) {
                    for (int l = 0; l < lanes; ++l) {
                      rec.set(l, m, 0.0);
                    }
                  });
  auto& reg = sink.registry;
  EXPECT_DOUBLE_EQ(reg.gauge("soa//lane_width")->value, 64.0);
  EXPECT_DOUBLE_EQ(reg.gauge("soa//lane_groups")->value, 2.0);
  EXPECT_DOUBLE_EQ(reg.gauge("soa//lane_occupancy")->value,
                   proto::manyWorldsLaneOccupancy(96, 64));
}

}  // namespace
}  // namespace dynet::sim
