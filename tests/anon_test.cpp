// Anonymous-network mode (EngineConfig::anonymous) and the Di Luna &
// Baldoni counting protocols built on it.
//
// The mode's contract:
//
//   * OFF — delivery order is the canonical ascending-sender order and
//     MessageRef::sender carries real node ids: byte-identical to a build
//     without the feature (the golden corpus pins this globally; the
//     OrderProbe below pins the ordering locally);
//   * ON — each receiver sees its inbox in a per-(receiver, round) seeded
//     permutation and MessageRef::sender is just the port index 0..m-1;
//     the payload MULTISET is untouched.  Both delivery paths (arena refs
//     and the legacy copy-inbox) apply the same permutation, so the flag
//     matrix stays byte-identical to itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "adversary/static_adversaries.h"
#include "campaign/shard_exec.h"
#include "campaign/spec.h"
#include "net/graph.h"
#include "protocols/anon_counting.h"
#include "protocols/flood.h"
#include "sim/engine.h"
#include "sim/message.h"
#include "util/rng.h"

namespace dynet::sim {
namespace {

// ------------------------------------------------------------- OrderProbe

/// Sends its node id on even (id+round) parity, otherwise listens and
/// records exactly what the engine delivered: the MessageRef sender fields
/// and the node ids embedded in the payloads, in delivery order.
class OrderProbeProcess : public Process {
 public:
  struct Record {
    Round round;
    std::vector<NodeId> senders;   // MessageRef::sender as delivered
    std::vector<NodeId> payloads;  // node id each payload claims
  };

  explicit OrderProbeProcess(NodeId self) : self_(self) {}

  Action onRound(Round round, util::CoinStream& /*coins*/) override {
    Action action;
    if ((static_cast<int>(self_) + round) % 2 == 0) {
      action.send = true;
      action.msg = MessageBuilder()
                       .put(static_cast<std::uint64_t>(self_), 16)
                       .build();
    }
    return action;
  }

  bool wantsMessageRefs() const override { return true; }

  void onDeliverRefs(Round round, bool sent,
                     std::span<const MessageRef> received) override {
    if (sent) {
      return;
    }
    Record rec;
    rec.round = round;
    for (const MessageRef& ref : received) {
      rec.senders.push_back(ref.sender);
      MessageReader reader(*ref);
      rec.payloads.push_back(static_cast<NodeId>(reader.get(16)));
    }
    records.push_back(std::move(rec));
  }

  void onDeliver(Round round, bool sent,
                 std::span<const Message> received) override {
    // Legacy path: senders are not visible, payloads still are.
    if (sent) {
      return;
    }
    Record rec;
    rec.round = round;
    for (const Message& msg : received) {
      MessageReader reader(msg);
      rec.payloads.push_back(static_cast<NodeId>(reader.get(16)));
    }
    records.push_back(std::move(rec));
  }

  std::vector<Record> records;

 private:
  NodeId self_;
};

class OrderProbeFactory : public ProcessFactory {
 public:
  std::unique_ptr<Process> create(NodeId node,
                                  NodeId /*num_nodes*/) const override {
    return std::make_unique<OrderProbeProcess>(node);
  }
};

struct ProbeRun {
  std::vector<std::vector<OrderProbeProcess::Record>> by_node;
};

ProbeRun runProbe(NodeId n, Round rounds, std::uint64_t seed, bool anonymous,
                  bool arena) {
  const OrderProbeFactory factory;
  std::vector<std::unique_ptr<Process>> processes;
  std::vector<OrderProbeProcess*> probes;
  for (NodeId v = 0; v < n; ++v) {
    auto p = std::make_unique<OrderProbeProcess>(v);
    probes.push_back(p.get());
    processes.push_back(std::move(p));
  }
  EngineConfig config;
  config.max_rounds = rounds;
  config.stop_when_all_done = false;
  config.anonymous = anonymous;
  config.arena_delivery = arena;
  Engine engine(std::move(processes),
                std::make_unique<adv::StaticAdversary>(net::makeClique(n)),
                config, seed);
  engine.run();
  ProbeRun run;
  for (OrderProbeProcess* probe : probes) {
    run.by_node.push_back(probe->records);
  }
  return run;
}

TEST(AnonymousMode, OffDeliversAscendingRealSenders) {
  const ProbeRun run = runProbe(8, 12, 7, /*anonymous=*/false, /*arena=*/true);
  int checked = 0;
  for (const auto& records : run.by_node) {
    for (const auto& rec : records) {
      ASSERT_EQ(rec.senders.size(), rec.payloads.size());
      EXPECT_TRUE(std::is_sorted(rec.senders.begin(), rec.senders.end()))
          << "round " << rec.round;
      // Without anonymity the ref sender IS the payload's author.
      EXPECT_EQ(rec.senders, rec.payloads) << "round " << rec.round;
      checked += static_cast<int>(rec.senders.size());
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(AnonymousMode, OnDeliversPortNumbersAndPermutedPayloads) {
  const ProbeRun plain = runProbe(8, 12, 7, false, true);
  const ProbeRun anon = runProbe(8, 12, 7, true, true);
  ASSERT_EQ(plain.by_node.size(), anon.by_node.size());
  bool saw_permutation = false;
  for (std::size_t v = 0; v < anon.by_node.size(); ++v) {
    ASSERT_EQ(plain.by_node[v].size(), anon.by_node[v].size());
    for (std::size_t i = 0; i < anon.by_node[v].size(); ++i) {
      const auto& a = anon.by_node[v][i];
      const auto& p = plain.by_node[v][i];
      // Senders are port indices 0..m-1, nothing else.
      for (std::size_t j = 0; j < a.senders.size(); ++j) {
        EXPECT_EQ(a.senders[j], static_cast<NodeId>(j));
      }
      // Same multiset of payloads as the non-anonymous run...
      auto sorted_a = a.payloads;
      auto sorted_p = p.payloads;
      std::sort(sorted_a.begin(), sorted_a.end());
      std::sort(sorted_p.begin(), sorted_p.end());
      EXPECT_EQ(sorted_a, sorted_p) << "node " << v << " round " << a.round;
      // ...but not (always) in the canonical order.
      saw_permutation = saw_permutation || a.payloads != p.payloads;
    }
  }
  EXPECT_TRUE(saw_permutation)
      << "anonymous mode never permuted any inbox — port numbering is "
         "leaking the canonical order";
}

TEST(AnonymousMode, ArenaAndLegacyPathsApplyTheSamePermutation) {
  const ProbeRun arena = runProbe(8, 12, 21, true, true);
  const ProbeRun legacy = runProbe(8, 12, 21, true, false);
  ASSERT_EQ(arena.by_node.size(), legacy.by_node.size());
  for (std::size_t v = 0; v < arena.by_node.size(); ++v) {
    ASSERT_EQ(arena.by_node[v].size(), legacy.by_node[v].size());
    for (std::size_t i = 0; i < arena.by_node[v].size(); ++i) {
      EXPECT_EQ(arena.by_node[v][i].payloads, legacy.by_node[v][i].payloads)
          << "node " << v << " record " << i;
    }
  }
}

TEST(AnonymousMode, PermutationIsSeededPerReceiverAndRound) {
  const ProbeRun a = runProbe(8, 12, 100, true, true);
  const ProbeRun b = runProbe(8, 12, 100, true, true);
  const ProbeRun c = runProbe(8, 12, 101, true, true);
  // Same seed: bit-for-bit reproducible.
  for (std::size_t v = 0; v < a.by_node.size(); ++v) {
    for (std::size_t i = 0; i < a.by_node[v].size(); ++i) {
      ASSERT_EQ(a.by_node[v][i].payloads, b.by_node[v][i].payloads);
    }
  }
  // Different seed: some inbox permutes differently.
  bool differs = false;
  for (std::size_t v = 0; v < a.by_node.size() && !differs; ++v) {
    for (std::size_t i = 0; i < a.by_node[v].size() && !differs; ++i) {
      differs = a.by_node[v][i].payloads != c.by_node[v][i].payloads;
    }
  }
  EXPECT_TRUE(differs);
}

// ------------------------------------------------------- anon protocols

TEST(AnonCounting, EstimatesCliqueSizeWithoutIdentities) {
  const NodeId n = 16;
  const int k = 64;
  const Round total_rounds = 512;
  proto::AnonCountingFactory factory(k, total_rounds, /*master_seed=*/0xA40);
  EngineConfig config;
  config.max_rounds = total_rounds;
  config.anonymous = true;
  Engine engine(factory,
                std::make_unique<adv::StaticAdversary>(net::makeClique(n)),
                config, 0x5EED);
  const RunResult r = engine.run();
  EXPECT_TRUE(r.all_done);
  for (NodeId v = 0; v < n; ++v) {
    const double est = static_cast<double>(engine.process(v).output()) / 256.0;
    EXPECT_GT(est, n / 2.0) << "node " << v;
    EXPECT_LT(est, n * 2.0) << "node " << v;
  }
}

TEST(AnonSizeEstimate, LeaderDeclaresAndHaltFloodsToEveryNode) {
  const NodeId n = 12;
  proto::AnonSizeEstimateFactory factory(/*k=*/32, /*gamma=*/2,
                                         /*master_seed=*/0xB52);
  EngineConfig config;
  config.max_rounds = 6'000;
  config.anonymous = true;
  Engine engine(factory,
                std::make_unique<adv::StaticAdversary>(net::makeClique(n)),
                config, 0xD00D);
  const RunResult r = engine.run();
  ASSERT_TRUE(r.all_done) << "size estimation never terminated";
  const std::uint64_t declared = engine.process(0).output();
  EXPECT_GT(declared, 0u);
  const double est = static_cast<double>(declared) / 256.0;
  EXPECT_GT(est, n / 2.0);
  EXPECT_LT(est, n * 2.0);
  for (NodeId v = 1; v < n; ++v) {
    EXPECT_EQ(engine.process(v).output(), declared)
        << "node " << v << " halted with a different count";
  }
}

TEST(AnonSizeEstimate, PhaseLocatorDoublesPhaseLengths) {
  proto::AnonSizeEstimateProcess p(/*k=*/4, /*gamma=*/1, /*leader=*/false,
                                   /*exp_seed=*/1);
  // Phase p spans k*gamma*2^p rounds: ends at 4, 12, 28, 60, ...
  EXPECT_EQ(p.locate(1).phase, 0);
  EXPECT_EQ(p.locate(4).phase_end, 4);
  EXPECT_EQ(p.locate(5).phase, 1);
  EXPECT_EQ(p.locate(12).phase_end, 12);
  EXPECT_EQ(p.locate(13).phase, 2);
  EXPECT_EQ(p.locate(28).phase_end, 28);
}

// ---------------------------------------------- engine/campaign integration

TEST(AnonymousMode, SoAStateIsGatedOffButResultsMatch) {
  // soa_state + anonymous must take the object path (ports shuffle per
  // receiver, which the SoA lanes do not model) and produce the same run
  // as an explicit soa_state=false engine.
  const NodeId n = 10;
  const auto run = [&](bool soa) {
    proto::FloodFactory factory(0, 0x2a, 8, proto::FloodMode::kDeterministic,
                                0);
    EngineConfig config;
    config.max_rounds = 64;
    config.anonymous = true;
    config.soa_state = soa;
    Engine engine(factory,
                  std::make_unique<adv::StaticAdversary>(net::makePath(n)),
                  config, 0xF10);
    const RunResult r = engine.run();
    std::vector<std::uint64_t> digests;
    for (NodeId v = 0; v < n; ++v) {
      digests.push_back(engine.stateDigest(v));
    }
    return std::make_pair(r.messages_sent, digests);
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(AnonymousMode, AnonProtocolsForceTheFlagInShards) {
  campaign::ShardConfig shard;
  shard.protocol = "anon_count";
  shard.adversary = "static_ring";
  shard.n = 8;
  shard.k = 8;
  shard.diameter = 4;
  shard.max_rounds = 2'000;
  shard.trials = 2;
  // shard.anonymous stays false: execution must force it for anon_*.
  const campaign::ShardResult result = campaign::runShard(shard);
  ASSERT_EQ(result.trials, 2);
  const auto it = result.metrics.find("all_done");
  ASSERT_NE(it, result.metrics.end());
  for (const double done : it->second) {
    EXPECT_EQ(done, 1.0);
  }
}

}  // namespace
}  // namespace dynet::sim
