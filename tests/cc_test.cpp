// DISJOINTNESSCP: cycle promise, evaluation, generators, trivial
// protocols, channel accounting.
#include <gtest/gtest.h>

#include "cc/channel.h"
#include "cc/disjointness_cp.h"
#include "cc/trivial_protocols.h"
#include "util/bitio.h"
#include "util/check.h"

namespace dynet::cc {
namespace {

TEST(CyclePromise, AcceptsFeasiblePairs) {
  Instance inst;
  inst.n = 4;
  inst.q = 5;
  inst.x = {0, 4, 2, 3};
  inst.y = {0, 4, 3, 2};
  EXPECT_TRUE(cyclePromiseHolds(inst));
}

TEST(CyclePromise, RejectsViolations) {
  Instance inst;
  inst.n = 2;
  inst.q = 5;
  inst.x = {1, 2};
  inst.y = {1, 3};  // (1,1) not allowed: equal but not 0/q-1
  EXPECT_FALSE(cyclePromiseHolds(inst));
  inst.y = {0, 3};
  EXPECT_TRUE(cyclePromiseHolds(inst));
  inst.y = {0, 5};  // out of range
  EXPECT_FALSE(cyclePromiseHolds(inst));
  inst.q = 4;  // even q
  inst.y = {0, 3};
  EXPECT_FALSE(cyclePromiseHolds(inst));
}

TEST(Evaluate, ZeroIffZeroZeroPair) {
  Instance inst;
  inst.n = 3;
  inst.q = 5;
  inst.x = {1, 4, 3};
  inst.y = {2, 4, 2};
  EXPECT_EQ(evaluate(inst), 1);
  inst.x[1] = 0;
  inst.y[1] = 0;
  EXPECT_EQ(evaluate(inst), 0);
}

TEST(Evaluate, RejectsInvalid) {
  Instance inst;
  inst.n = 1;
  inst.q = 5;
  inst.x = {2};
  inst.y = {2};
  EXPECT_THROW(evaluate(inst), util::CheckError);
}

class RandomInstanceSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RandomInstanceSweep, GeneratorRespectsPromiseAndForce) {
  const auto [n, q] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) * 1000 + q);
  for (int trial = 0; trial < 50; ++trial) {
    const Instance free = randomInstance(n, q, rng);
    EXPECT_TRUE(cyclePromiseHolds(free));
    const Instance zero = randomInstance(n, q, rng, 0);
    EXPECT_EQ(evaluate(zero), 0);
    const Instance one = randomInstance(n, q, rng, 1);
    EXPECT_EQ(evaluate(one), 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomInstanceSweep,
                         ::testing::Combine(::testing::Values(1, 2, 8, 64),
                                            ::testing::Values(3, 5, 9, 31)));

TEST(Figure1, ExactInstance) {
  const Instance inst = figure1Instance();
  EXPECT_EQ(inst.n, 4);
  EXPECT_EQ(inst.q, 5);
  EXPECT_EQ(inst.x, (std::vector<int>{3, 1, 1, 0}));
  EXPECT_EQ(inst.y, (std::vector<int>{2, 2, 0, 0}));
  EXPECT_EQ(evaluate(inst), 0);
}

TEST(LowerBoundFormula, ShapeAndFloor) {
  EXPECT_GE(ccLowerBoundBits(10, 99), 1.0);  // floored
  EXPECT_GT(ccLowerBoundBits(1 << 20, 3), ccLowerBoundBits(1 << 20, 31));
  EXPECT_GT(ccLowerBoundBits(1 << 20, 5), ccLowerBoundBits(1 << 10, 5));
}

TEST(Channel, CountsDirections) {
  CountedChannel ch;
  ch.transfer(Direction::kAliceToBob, 10);
  ch.transfer(Direction::kBobToAlice, 3);
  ch.transfer(Direction::kAliceToBob, 5);
  EXPECT_EQ(ch.aliceToBobBits(), 15u);
  EXPECT_EQ(ch.bobToAliceBits(), 3u);
  EXPECT_EQ(ch.totalBits(), 18u);
}

class TrivialProtocolSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TrivialProtocolSweep, BothProtocolsExactOnRandomInstances) {
  const auto [n, q] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(n) * 31 + q);
  for (int trial = 0; trial < 30; ++trial) {
    const Instance inst =
        randomInstance(n, q, rng, trial % 3 == 0 ? std::optional<int>(0)
                       : trial % 3 == 1         ? std::optional<int>(1)
                                                : std::nullopt);
    const int truth = evaluate(inst);
    CountedChannel ch1, ch2;
    EXPECT_EQ(solveSendAll(inst, ch1), truth);
    EXPECT_EQ(solveZeroPositions(inst, ch2), truth);
    // Send-all cost is exactly n * ceil(log2 q) + 1.
    EXPECT_EQ(ch1.totalBits(),
              static_cast<std::uint64_t>(n) * util::bitWidthFor(q) + 1);
    // Zero-positions cost is bounded by (n+1) indices + 1.
    EXPECT_LE(ch2.totalBits(),
              static_cast<std::uint64_t>(n + 1) * util::bitWidthFor(n) + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TrivialProtocolSweep,
                         ::testing::Combine(::testing::Values(1, 16, 128),
                                            ::testing::Values(3, 7, 31)));

TEST(Describe, MentionsFields) {
  const std::string s = describe(figure1Instance());
  EXPECT_NE(s.find("q=5"), std::string::npos);
  EXPECT_NE(s.find("disj=0"), std::string::npos);
}

}  // namespace
}  // namespace dynet::cc
