// Trace serialization: round trips, validation, and re-analysis of
// recorded executions.
#include <gtest/gtest.h>

#include <sstream>

#include "adversary/churn_adversaries.h"
#include "adversary/dynamic_adversaries.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "net/churn.h"
#include "net/diameter.h"
#include "protocols/oracles.h"
#include "sim/engine.h"
#include "sim/trace.h"

namespace dynet::sim {
namespace {

Trace recordedRun(NodeId n, Round rounds, std::uint64_t seed) {
  proto::RandomBabblerFactory factory(24);
  std::vector<std::unique_ptr<Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  EngineConfig config;
  config.max_rounds = rounds;
  config.record_topologies = true;
  config.record_actions = true;
  config.stop_when_all_done = false;
  Engine engine(std::move(ps),
                std::make_unique<adv::RandomTreeAdversary>(n, seed), config,
                seed);
  engine.run();
  return traceFromEngine(engine);
}

TEST(Trace, RoundTripPreservesEverything) {
  const Trace original = recordedRun(12, 9, 5);
  std::stringstream buffer;
  writeTrace(buffer, original);
  const Trace parsed = readTrace(buffer);

  ASSERT_EQ(parsed.num_nodes, original.num_nodes);
  ASSERT_EQ(parsed.rounds(), original.rounds());
  for (Round r = 0; r < original.rounds(); ++r) {
    const auto& go = *original.topologies[static_cast<std::size_t>(r)];
    const auto& gp = *parsed.topologies[static_cast<std::size_t>(r)];
    ASSERT_EQ(go.numEdges(), gp.numEdges()) << "round " << r;
    for (std::size_t e = 0; e < go.numEdges(); ++e) {
      EXPECT_EQ(go.edges()[e], gp.edges()[e]);
    }
    for (NodeId v = 0; v < original.num_nodes; ++v) {
      EXPECT_TRUE(original.actions[static_cast<std::size_t>(r)]
                                  [static_cast<std::size_t>(v)] ==
                  parsed.actions[static_cast<std::size_t>(r)]
                                [static_cast<std::size_t>(v)])
          << "round " << r << " node " << v;
    }
  }
}

TEST(Trace, TopologyOnlyRoundTrip) {
  Trace trace = recordedRun(8, 5, 7);
  trace.actions.clear();
  std::stringstream buffer;
  writeTrace(buffer, trace);
  const Trace parsed = readTrace(buffer);
  EXPECT_EQ(parsed.rounds(), 5);
  EXPECT_TRUE(parsed.actions.empty());
}

TEST(Trace, ReanalysisMatchesLiveMetrics) {
  // Diameter and churn computed from the parsed trace equal the live ones.
  const Trace original = recordedRun(16, 40, 9);
  std::stringstream buffer;
  writeTrace(buffer, original);
  const Trace parsed = readTrace(buffer);
  EXPECT_EQ(net::allSourcesEccentricity(parsed.topologies, 0),
            net::allSourcesEccentricity(original.topologies, 0));
  EXPECT_DOUBLE_EQ(net::meanConsecutiveJaccard(parsed.topologies),
                   net::meanConsecutiveJaccard(original.topologies));
}

TEST(Trace, RejectsBadHeader) {
  std::stringstream buffer("not-a-trace\n");
  EXPECT_THROW(readTrace(buffer), util::CheckError);
}

TEST(Trace, RejectsNonContiguousRounds) {
  std::stringstream buffer("dynet-trace v1\nn 3\nr 2\ne 0 1\ne 1 2\n");
  EXPECT_THROW(readTrace(buffer), util::CheckError);
}

TEST(Trace, RejectsUnknownTag) {
  std::stringstream buffer("dynet-trace v1\nn 2\nr 1\ne 0 1\nz 9\n");
  EXPECT_THROW(readTrace(buffer), util::CheckError);
}

TEST(Trace, RejectsEmpty) {
  std::stringstream buffer("dynet-trace v1\nn 2\n");
  EXPECT_THROW(readTrace(buffer), util::CheckError);
}

TEST(Trace, WideMessageRoundTrip) {
  // Payload wider than 64 bits survives the word-split encoding.
  Trace trace;
  trace.num_nodes = 2;
  trace.topologies.push_back(
      std::make_shared<net::Graph>(2, std::vector<net::Edge>{{0, 1}}));
  std::vector<Action> actions(2);
  MessageBuilder builder;
  builder.put(0xdeadbeefcafef00dULL, 64);
  builder.put(0x12345, 20);
  actions[0].send = true;
  actions[0].msg = builder.build();
  trace.actions.push_back(actions);
  std::stringstream buffer;
  writeTrace(buffer, trace);
  const Trace parsed = readTrace(buffer);
  ASSERT_TRUE(parsed.actions[0][0].send);
  EXPECT_TRUE(parsed.actions[0][0].msg == actions[0].msg);
}

TEST(Trace, FaultInjectedRunRoundTrips) {
  // A run with crashed *and* restarted nodes still serializes and parses:
  // crashed nodes simply record non-sending actions, which the format
  // already covers.  The parsed trace must match the recorded one exactly.
  const NodeId n = 14;
  proto::RandomBabblerFactory factory(24);
  std::vector<std::unique_ptr<Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  EngineConfig config;
  config.max_rounds = 40;
  config.record_topologies = true;
  config.record_actions = true;
  config.stop_when_all_done = false;
  Engine engine(std::move(ps),
                std::make_unique<adv::RandomGraphAdversary>(n, 0.25, 4),
                config, /*seed=*/13);
  faults::FaultConfig fc;
  fc.crash_fraction = 0.3;
  fc.crash_window = 15;
  fc.restart = true;
  fc.restart_downtime = 8;
  fc.drop_prob = 0.1;
  engine.setFaultInjector(std::make_shared<const faults::FaultInjector>(
      faults::FaultPlan(n, fc, /*seed=*/0xC0), &factory));
  const RunResult result = engine.run();
  ASSERT_GT(result.crashes, 0u);
  ASSERT_GT(result.restarts, 0u);

  const Trace original = traceFromEngine(engine);
  std::stringstream buffer;
  writeTrace(buffer, original);
  const Trace parsed = readTrace(buffer);
  ASSERT_EQ(parsed.rounds(), original.rounds());
  for (Round r = 0; r < original.rounds(); ++r) {
    for (NodeId v = 0; v < n; ++v) {
      EXPECT_TRUE(original.actions[static_cast<std::size_t>(r)]
                                  [static_cast<std::size_t>(v)] ==
                  parsed.actions[static_cast<std::size_t>(r)]
                                [static_cast<std::size_t>(v)])
          << "round " << r << " node " << v;
    }
  }
}

TEST(Trace, EngineWithoutRecordingRejected) {
  proto::RandomBabblerFactory factory(8);
  std::vector<std::unique_ptr<Process>> ps;
  ps.push_back(factory.create(0, 2));
  ps.push_back(factory.create(1, 2));
  EngineConfig config;
  config.max_rounds = 2;
  config.stop_when_all_done = false;
  Engine engine(std::move(ps),
                std::make_unique<adv::RandomTreeAdversary>(2, 1), config, 1);
  engine.run();
  EXPECT_THROW(traceFromEngine(engine), util::CheckError);
}

}  // namespace
}  // namespace dynet::sim
