// Pins the batch-trial refactor's behaviour guarantees:
//   * sim::BatchRunner (pooled workspaces, dense TrialRecorder metrics,
//     thread-pool fan-out) reproduces a sequential per-trial-Engine loop
//     byte for byte on fixed seeds — every RunResult field, per-node state
//     digests, serialized traces, and (with a MetricsSink) metrics.json —
//     for clean runs, fault-injected runs, and sink-attached runs.
//   * TrialRecorder aggregation equals the legacy std::map path of
//     sim::runTrials on the same inputs, including metrics only present in
//     some trials and metrics first registered mid-run.
//   * Workspace reuse leaks nothing across trials or runs.
//   * util::parseThreadCount (the DYNET_THREADS override) parsing.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "adversary/churn_adversaries.h"
#include "faults/fault_injector.h"
#include "faults/fault_plan.h"
#include "obs/sink.h"
#include "protocols/flood.h"
#include "sim/batch.h"
#include "sim/engine.h"
#include "sim/runner.h"
#include "sim/trace.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace dynet::sim {
namespace {

struct TrialArtifacts {
  RunResult result;
  std::vector<std::uint64_t> digests;  // per-node stateDigest
  std::string trace;                   // serialized writeTrace output
  std::string metrics_json;            // empty when no sink attached

  friend bool operator==(const TrialArtifacts& x, const TrialArtifacts& y) {
    return x.result.rounds_executed == y.result.rounds_executed &&
           x.result.all_done == y.result.all_done &&
           x.result.all_done_round == y.result.all_done_round &&
           x.result.done_round == y.result.done_round &&
           x.result.messages_sent == y.result.messages_sent &&
           x.result.bits_sent == y.result.bits_sent &&
           x.result.bits_per_node == y.result.bits_per_node &&
           x.result.max_bits_per_node == y.result.max_bits_per_node &&
           x.result.bits_per_round == y.result.bits_per_round &&
           x.result.crashes == y.result.crashes &&
           x.result.restarts == y.result.restarts &&
           x.result.messages_dropped == y.result.messages_dropped &&
           x.result.messages_corrupted == y.result.messages_corrupted &&
           x.digests == y.digests && x.trace == y.trace &&
           x.metrics_json == y.metrics_json;
  }
};

/// One reference trial: randomized flood over a G(n,p) churn adversary,
/// full recording so traces can be compared, optional fault plan and
/// metrics sink.  `ws` selects workspace reuse (batch) vs per-engine
/// allocation (the historical sequential loop).
TrialArtifacts runFloodTrial(NodeId n, std::uint64_t seed,
                             const faults::FaultConfig* fc, bool with_sink,
                             EngineWorkspace* ws) {
  proto::FloodFactory factory(0, 0x2a, 8, proto::FloodMode::kRandomized,
                              /*halt_round=*/60);
  std::vector<std::unique_ptr<Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  obs::MetricsSink sink;
  EngineConfig config;
  config.max_rounds = 80;
  config.record_topologies = true;
  config.record_actions = true;
  config.stop_when_all_done = false;
  config.metrics = with_sink ? &sink : nullptr;
  Engine engine(std::move(ps),
                std::make_unique<adv::RandomGraphAdversary>(n, 0.5, /*seed=*/9),
                config, seed, ws);
  if (fc != nullptr) {
    engine.setFaultInjector(std::make_shared<const faults::FaultInjector>(
        faults::FaultPlan(n, *fc, seed * 0x9E3779B97F4A7C15ULL + 0xFA),
        &factory));
  }
  TrialArtifacts artifacts;
  artifacts.result = engine.run();
  for (NodeId v = 0; v < n; ++v) {
    artifacts.digests.push_back(engine.process(v).stateDigest());
  }
  std::ostringstream trace;
  writeTrace(trace, traceFromEngine(engine));
  artifacts.trace = trace.str();
  if (with_sink) {
    std::ostringstream json;
    sink.registry.writeJson(json);
    artifacts.metrics_json = json.str();
  }
  return artifacts;
}

/// Runs `trials` seeds both ways and expects byte-identical artifacts.
void expectBatchMatchesSequential(NodeId n, int trials,
                                  std::uint64_t base_seed,
                                  const faults::FaultConfig* fc,
                                  bool with_sink, BatchOptions options) {
  std::vector<TrialArtifacts> sequential;
  for (int i = 0; i < trials; ++i) {
    sequential.push_back(runFloodTrial(
        n, util::hashCombine(base_seed, static_cast<std::size_t>(i)), fc,
        with_sink, nullptr));
  }

  std::map<std::uint64_t, std::size_t> seed_to_trial;
  for (int i = 0; i < trials; ++i) {
    seed_to_trial[util::hashCombine(base_seed, static_cast<std::size_t>(i))] =
        static_cast<std::size_t>(i);
  }
  std::vector<TrialArtifacts> batch(static_cast<std::size_t>(trials));
  std::mutex mu;
  BatchRunner runner(options);
  const MetricId m_rounds = runner.metricId("rounds");
  const TrialSummary summary = runner.run(
      trials, base_seed,
      [&](std::uint64_t seed, EngineWorkspace& ws, TrialRecorder& rec) {
        TrialArtifacts artifacts = runFloodTrial(n, seed, fc, with_sink, &ws);
        rec.set(m_rounds,
                static_cast<double>(artifacts.result.rounds_executed));
        std::lock_guard<std::mutex> lock(mu);
        batch[seed_to_trial.at(seed)] = std::move(artifacts);
      });

  ASSERT_EQ(summary.metrics.at("rounds").count(),
            static_cast<std::size_t>(trials));
  for (int i = 0; i < trials; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_TRUE(sequential[idx] == batch[idx]) << "trial " << i << " differs";
  }
}

TEST(BatchRunner, ByteIdenticalToSequentialCleanRun) {
  expectBatchMatchesSequential(16, 8, 0xB47C, nullptr, /*with_sink=*/false,
                               BatchOptions{});
}

TEST(BatchRunner, ByteIdenticalToSequentialWithFaultInjector) {
  faults::FaultConfig fc;
  fc.drop_prob = 0.2;
  fc.corrupt_prob = 0.1;
  fc.deliver_corrupted = false;  // FloodProcess rejects mangled tokens loudly
  fc.crash_fraction = 0.25;
  fc.crash_window = 20;
  fc.restart = true;
  fc.restart_downtime = 16;
  expectBatchMatchesSequential(16, 8, 0xFA17, &fc, /*with_sink=*/false,
                               BatchOptions{});
}

TEST(BatchRunner, ByteIdenticalMetricsJsonWithSinkAttached) {
  // The registry is not thread-safe, so sink-attached trials run with
  // threads=1 (inline on the calling thread) — the supported pattern for
  // instrumented batches.
  faults::FaultConfig fc;
  fc.drop_prob = 0.1;
  fc.crash_fraction = 0.2;
  fc.crash_window = 16;
  expectBatchMatchesSequential(16, 4, 0x0B5, &fc, /*with_sink=*/true,
                               BatchOptions{.threads = 1});
  expectBatchMatchesSequential(16, 4, 0x0B5, nullptr, /*with_sink=*/true,
                               BatchOptions{.threads = 1});
}

TEST(BatchRunner, ByteIdenticalOnDedicatedPool) {
  expectBatchMatchesSequential(16, 8, 0xD1CE, nullptr, /*with_sink=*/false,
                               BatchOptions{.threads = 2});
}

// ------------------------------------------------- TrialRecorder vs map

std::map<std::string, double> legacyBody(std::uint64_t seed) {
  std::map<std::string, double> metrics{
      {"seedmod", static_cast<double>(seed % 101)},
      {"one", 1.0},
  };
  if (seed % 3 == 0) {
    metrics["sparse"] = static_cast<double>(seed % 7);  // not in every trial
  }
  return metrics;
}

void expectSummariesEqual(const TrialSummary& a, const TrialSummary& b) {
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (const auto& [name, summary] : a.metrics) {
    ASSERT_TRUE(b.metrics.count(name)) << name;
    const util::Summary& other = b.metrics.at(name);
    EXPECT_EQ(summary.count(), other.count()) << name;
    EXPECT_EQ(summary.mean(), other.mean()) << name;
    EXPECT_EQ(summary.stddev(), other.stddev()) << name;
    EXPECT_EQ(summary.min(), other.min()) << name;
    EXPECT_EQ(summary.max(), other.max()) << name;
    EXPECT_EQ(summary.median(), other.median()) << name;
    EXPECT_EQ(summary.p95(), other.p95()) << name;
  }
}

TEST(BatchRunner, TrialRecorderMatchesLegacyMapAggregation) {
  const int trials = 64;
  const std::uint64_t base_seed = 0x5EED;
  const TrialSummary legacy = runTrials(trials, base_seed, legacyBody);

  BatchRunner runner;
  const TrialSummary batch = runner.run(
      trials, base_seed,
      [](std::uint64_t seed, EngineWorkspace&, TrialRecorder& rec) {
        // "sparse" is deliberately interned lazily, mid-run, from whichever
        // trial first hits it.
        for (const auto& [name, value] : legacyBody(seed)) {
          rec.set(name, value);
        }
      });
  expectSummariesEqual(legacy, batch);
}

TEST(BatchRunner, RepeatedRunsAreIdentical) {
  // Reusing one runner (interned schema, pooled workspaces) across runs
  // must leak nothing from one run into the next.
  BatchRunner runner;
  const auto body = [](std::uint64_t seed, EngineWorkspace& ws,
                       TrialRecorder& rec) {
    TrialArtifacts artifacts =
        runFloodTrial(12, seed, nullptr, /*with_sink=*/false, &ws);
    rec.set("bits", static_cast<double>(artifacts.result.bits_sent));
    rec.set("rounds", static_cast<double>(artifacts.result.rounds_executed));
  };
  const TrialSummary first = runner.run(6, 0xAB, body);
  const TrialSummary second = runner.run(6, 0xAB, body);
  expectSummariesEqual(first, second);
}

TEST(BatchRunner, LastWriteWinsLikeMapSubscript) {
  BatchRunner runner;
  const TrialSummary summary = runner.run(
      4, 1, [](std::uint64_t, EngineWorkspace&, TrialRecorder& rec) {
        rec.set("x", 1.0);
        rec.set("x", 2.0);  // overwrites, same as map[k] = v twice
      });
  EXPECT_EQ(summary.metrics.at("x").count(), 4u);
  EXPECT_EQ(summary.metrics.at("x").mean(), 2.0);
}

// ------------------------------------------------- cross-trial warm reuse

/// Hands out one shared GraphPtr without pre-warming it (unlike
/// StaticAdversary, whose constructor warms) so the test can observe
/// exactly when AdversaryPhase pays the warm-up.
class ColdSharedAdversary : public Adversary {
 public:
  explicit ColdSharedAdversary(net::GraphPtr graph)
      : graph_(std::move(graph)) {}

  net::GraphPtr topology(Round, const RoundObservation&) override {
    return graph_;
  }
  NodeId numNodes() const override { return graph_->numNodes(); }

 private:
  net::GraphPtr graph_;
};

std::uint64_t coldWarmsForTrial(const net::GraphPtr& g, std::uint64_t seed) {
  proto::FloodFactory factory(0, 0x2a, 8, proto::FloodMode::kDeterministic,
                              /*halt_round=*/10);
  std::vector<std::unique_ptr<Process>> ps;
  for (NodeId v = 0; v < g->numNodes(); ++v) {
    ps.push_back(factory.create(v, g->numNodes()));
  }
  obs::MetricsSink sink;
  EngineConfig config;
  config.max_rounds = 12;
  config.metrics = &sink;
  Engine engine(std::move(ps), std::make_unique<ColdSharedAdversary>(g),
                config, seed);
  engine.run();
  return sink.registry.counters().at("topology/cold_warms").value;
}

TEST(BatchRunner, SharedWarmedGraphIsNotRewarmedAcrossTrials) {
  // A graph shared across trials pays its warm-up exactly once: the first
  // trial's AdversaryPhase finds it cold, every later trial (and every
  // later round — the engine tracks the last-warmed pointer) sees
  // warmed() and skips.  Before the warmed() fast path, every trial of a
  // shared graph redid this work behind std::call_once's mutex.
  const net::GraphPtr shared = net::makeRing(12);
  EXPECT_FALSE(shared->warmed());
  EXPECT_EQ(coldWarmsForTrial(shared, 0xAA), 1u);
  EXPECT_TRUE(shared->warmed());
  EXPECT_EQ(coldWarmsForTrial(shared, 0xAB), 0u);
  EXPECT_EQ(coldWarmsForTrial(shared, 0xAC), 0u);

  // Contrast: a fresh graph per trial is cold every time.
  EXPECT_EQ(coldWarmsForTrial(net::makeRing(12), 0xAD), 1u);
  EXPECT_EQ(coldWarmsForTrial(net::makeRing(12), 0xAE), 1u);
}

// ------------------------------------------------- DYNET_THREADS parsing

TEST(ParseThreadCount, AcceptsPositiveIntegers) {
  EXPECT_EQ(util::parseThreadCount("1"), 1u);
  EXPECT_EQ(util::parseThreadCount("4"), 4u);
  EXPECT_EQ(util::parseThreadCount("96"), 96u);
}

TEST(ParseThreadCount, UnsetSelectsDefault) {
  EXPECT_EQ(util::parseThreadCount(nullptr), 0u);
  EXPECT_EQ(util::parseThreadCount(""), 0u);
}

TEST(ParseThreadCount, RejectsGarbageLoudly) {
  // A SET-but-malformed override must fail, not silently select the
  // hardware default (util::parseEnvInt contract).
  EXPECT_THROW(util::parseThreadCount("abc"), util::CheckError);
  EXPECT_THROW(util::parseThreadCount("4x"), util::CheckError);
  EXPECT_THROW(util::parseThreadCount("0"), util::CheckError);
  EXPECT_THROW(util::parseThreadCount("-2"), util::CheckError);
  EXPECT_THROW(util::parseThreadCount("123456789"), util::CheckError);
  EXPECT_THROW(util::parseThreadCount("99999999999999999999"),
               util::CheckError);  // overflow
  try {
    util::parseThreadCount("1O");  // the classic 1-vs-O typo
    FAIL() << "expected CheckError";
  } catch (const util::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("DYNET_THREADS"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace dynet::sim
