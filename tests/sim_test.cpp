// Engine semantics: round structure, send-xor-receive delivery, budget
// enforcement, connectivity checking, determinism, recording.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/static_adversaries.h"
#include "net/graph.h"
#include "sim/engine.h"
#include "sim/message.h"
#include "sim/runner.h"
#include "util/check.h"

namespace dynet::sim {
namespace {

/// Scripted process: per round, a fixed send/receive decision and payload;
/// records everything delivered.
class Scripted : public Process {
 public:
  struct Step {
    bool send = false;
    std::uint64_t payload = 0;
  };

  Scripted(NodeId node, std::vector<Step> script, int payload_bits = 16)
      : node_(node), script_(std::move(script)), payload_bits_(payload_bits) {}

  Action onRound(Round round, util::CoinStream& /*coins*/) override {
    const auto& step = script_.at(static_cast<std::size_t>(round - 1));
    Action a;
    if (step.send) {
      a.send = true;
      a.msg = MessageBuilder().put(step.payload, payload_bits_).build();
    }
    return a;
  }

  void onDeliver(Round round, bool sent,
                 std::span<const Message> received) override {
    (void)round;
    sent_flags_.push_back(sent);
    std::vector<std::uint64_t> payloads;
    for (const Message& m : received) {
      MessageReader r(m);
      payloads.push_back(r.get(payload_bits_));
    }
    std::sort(payloads.begin(), payloads.end());
    deliveries_.push_back(payloads);
  }

  const std::vector<std::vector<std::uint64_t>>& deliveries() const {
    return deliveries_;
  }

 private:
  NodeId node_;
  std::vector<Step> script_;
  int payload_bits_;
  std::vector<bool> sent_flags_;
  std::vector<std::vector<std::uint64_t>> deliveries_;
};

std::vector<std::unique_ptr<Process>> scriptedNodes(
    const std::vector<std::vector<Scripted::Step>>& scripts) {
  std::vector<std::unique_ptr<Process>> ps;
  for (std::size_t v = 0; v < scripts.size(); ++v) {
    ps.push_back(std::make_unique<Scripted>(static_cast<NodeId>(v), scripts[v]));
  }
  return ps;
}

TEST(Message, BuildReadEquality) {
  Message a = MessageBuilder().put(5, 4).put(1, 1).build();
  Message b = MessageBuilder().put(5, 4).put(1, 1).build();
  Message c = MessageBuilder().put(5, 4).put(0, 1).build();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.bitSize(), 5);
  EXPECT_NE(a.digest(), c.digest());
  MessageReader r(a);
  EXPECT_EQ(r.get(4), 5u);
  EXPECT_EQ(r.get(1), 1u);
}

TEST(Engine, DeliveryMatrix) {
  // Path 0-1-2.  Round 1: node 0 and node 2 send, node 1 receives.
  // Round 2: node 1 sends, others receive.
  const std::vector<std::vector<Scripted::Step>> scripts = {
      {{true, 100}, {false, 0}},
      {{false, 0}, {true, 200}},
      {{true, 300}, {false, 0}},
  };
  auto ps = scriptedNodes(scripts);
  std::vector<const Scripted*> views;
  for (const auto& p : ps) {
    views.push_back(static_cast<const Scripted*>(p.get()));
  }
  EngineConfig config;
  config.max_rounds = 2;
  config.stop_when_all_done = false;
  Engine engine(std::move(ps), std::make_unique<adv::StaticAdversary>(net::makePath(3)),
                config, 1);
  engine.run();
  // Node 1, round 1: received both 100 and 300.
  EXPECT_EQ(views[1]->deliveries()[0], (std::vector<std::uint64_t>{100, 300}));
  // Senders received nothing in round 1.
  EXPECT_TRUE(views[0]->deliveries()[0].empty());
  EXPECT_TRUE(views[2]->deliveries()[0].empty());
  // Round 2: 0 and 2 each get 200 from node 1.
  EXPECT_EQ(views[0]->deliveries()[1], (std::vector<std::uint64_t>{200}));
  EXPECT_EQ(views[2]->deliveries()[1], (std::vector<std::uint64_t>{200}));
  EXPECT_TRUE(views[1]->deliveries()[1].empty());
  EXPECT_EQ(engine.result().messages_sent, 3u);
  EXPECT_EQ(engine.result().bits_sent, 48u);
}

TEST(Engine, ReceiverWithNoSendingNeighborGetsEmpty) {
  const std::vector<std::vector<Scripted::Step>> scripts = {
      {{false, 0}},
      {{false, 0}},
  };
  auto ps = scriptedNodes(scripts);
  const auto* v0 = static_cast<const Scripted*>(ps[0].get());
  EngineConfig config;
  config.max_rounds = 1;
  config.stop_when_all_done = false;
  Engine engine(std::move(ps), std::make_unique<adv::StaticAdversary>(net::makePath(2)),
                config, 1);
  engine.run();
  EXPECT_TRUE(v0->deliveries()[0].empty());
}

/// Process that violates the bit budget.
class Hog : public Process {
 public:
  Action onRound(Round, util::CoinStream&) override {
    Action a;
    a.send = true;
    MessageBuilder b;
    for (int i = 0; i < 4; ++i) {
      b.put(~std::uint64_t{0}, 60);  // 240 bits >> budget for N=2
    }
    a.msg = b.build();
    return a;
  }
  void onDeliver(Round, bool, std::span<const Message>) override {}
};

TEST(Engine, BudgetViolationAborts) {
  std::vector<std::unique_ptr<Process>> ps;
  ps.push_back(std::make_unique<Hog>());
  ps.push_back(std::make_unique<Hog>());
  EngineConfig config;
  Engine engine(std::move(ps), std::make_unique<adv::StaticAdversary>(net::makePath(2)),
                config, 1);
  EXPECT_THROW(engine.step(), util::CheckError);
}

/// Sends a well-formed 240-bit message every round (over the default
/// budget, within a raised explicit one).
class WideSender : public Process {
 public:
  Action onRound(Round, util::CoinStream&) override {
    Action a;
    a.send = true;
    MessageBuilder b;
    for (int i = 0; i < 4; ++i) {
      b.put((std::uint64_t{1} << 60) - 1, 60);
    }
    a.msg = b.build();
    return a;
  }
  void onDeliver(Round, bool, std::span<const Message>) override {}
};

TEST(Engine, ExplicitBudgetOverridesDefault) {
  // A 240-bit message violates the default N=2 budget (72 bits) but is
  // legal once an explicit msg_budget_bits admits it...
  std::vector<std::unique_ptr<Process>> ps;
  ps.push_back(std::make_unique<WideSender>());
  ps.push_back(std::make_unique<WideSender>());
  EngineConfig config;
  config.msg_budget_bits = 240;
  config.max_rounds = 1;
  config.stop_when_all_done = false;
  Engine engine(std::move(ps), std::make_unique<adv::StaticAdversary>(net::makePath(2)),
                config, 1);
  EXPECT_EQ(engine.budgetBits(), 240);
  engine.run();
  EXPECT_EQ(engine.result().messages_sent, 2u);

  // ...and a tighter explicit budget still aborts the round.
  std::vector<std::unique_ptr<Process>> ps2;
  ps2.push_back(std::make_unique<WideSender>());
  ps2.push_back(std::make_unique<WideSender>());
  EngineConfig tight;
  tight.msg_budget_bits = 239;
  Engine strict(std::move(ps2),
                std::make_unique<adv::StaticAdversary>(net::makePath(2)), tight, 1);
  EXPECT_THROW(strict.step(), util::CheckError);
}

TEST(Engine, ExplicitBudgetAboveCapacityRejected) {
  std::vector<std::unique_ptr<Process>> ps;
  ps.push_back(std::make_unique<WideSender>());
  EngineConfig config;
  config.msg_budget_bits = Message::kCapacityBits + 1;
  EXPECT_THROW(Engine(std::move(ps),
                      std::make_unique<adv::StaticAdversary>(net::makePath(1)),
                      config, 1),
               util::CheckError);
}

TEST(Engine, DefaultBudgetScalesWithLogN) {
  EXPECT_EQ(defaultBudgetBits(2), 64 + 8);
  EXPECT_EQ(defaultBudgetBits(1024), 64 + 80);
  EXPECT_GT(defaultBudgetBits(1 << 20), defaultBudgetBits(1 << 10));
}

/// Adversary returning a disconnected topology.
class BrokenAdversary : public Adversary {
 public:
  explicit BrokenAdversary(NodeId n) : n_(n) {}
  net::GraphPtr topology(Round, const RoundObservation&) override {
    return std::make_shared<net::Graph>(n_, std::vector<net::Edge>{});
  }
  NodeId numNodes() const override { return n_; }

 private:
  NodeId n_;
};

TEST(Engine, DisconnectedTopologyRejected) {
  const std::vector<std::vector<Scripted::Step>> scripts = {{{false, 0}},
                                                            {{false, 0}}};
  auto ps = scriptedNodes(scripts);
  EngineConfig config;
  Engine engine(std::move(ps), std::make_unique<BrokenAdversary>(2), config, 1);
  EXPECT_THROW(engine.step(), util::CheckError);
}

/// Connected for the first `good_rounds` rounds, then disconnected.
class EventuallyBrokenAdversary : public Adversary {
 public:
  EventuallyBrokenAdversary(NodeId n, Round good_rounds)
      : n_(n), good_rounds_(good_rounds) {}
  net::GraphPtr topology(Round round, const RoundObservation&) override {
    if (round <= good_rounds_) {
      return net::makePath(n_);
    }
    return std::make_shared<net::Graph>(n_, std::vector<net::Edge>{});
  }
  NodeId numNodes() const override { return n_; }

 private:
  NodeId n_;
  Round good_rounds_;
};

TEST(Engine, MidRunDisconnectionRejected) {
  const std::vector<std::vector<Scripted::Step>> scripts = {
      {{false, 0}, {false, 0}, {false, 0}},
      {{false, 0}, {false, 0}, {false, 0}}};
  auto ps = scriptedNodes(scripts);
  EngineConfig config;
  config.stop_when_all_done = false;
  Engine engine(std::move(ps),
                std::make_unique<EventuallyBrokenAdversary>(2, 2), config, 1);
  EXPECT_TRUE(engine.step());
  EXPECT_TRUE(engine.step());
  EXPECT_THROW(engine.step(), util::CheckError);
  EXPECT_EQ(engine.result().rounds_executed, 2);
}

TEST(Engine, DisconnectedToleratedWhenCheckOff) {
  const std::vector<std::vector<Scripted::Step>> scripts = {{{false, 0}},
                                                            {{false, 0}}};
  auto ps = scriptedNodes(scripts);
  EngineConfig config;
  config.check_connectivity = false;
  config.max_rounds = 1;
  config.stop_when_all_done = false;
  Engine engine(std::move(ps), std::make_unique<BrokenAdversary>(2), config, 1);
  engine.run();
  EXPECT_EQ(engine.result().rounds_executed, 1);
}

/// Process that sends iff its per-round coin says so, payload = coin bits;
/// used to verify deterministic replay.
class CoinEcho : public Process {
 public:
  Action onRound(Round, util::CoinStream& coins) override {
    Action a;
    if (coins.coin()) {
      a.send = true;
      a.msg = MessageBuilder().put(coins.u64() & 0xffff, 16).build();
    }
    return a;
  }
  void onDeliver(Round, bool, std::span<const Message> received) override {
    for (const Message& m : received) {
      digest_ = util::hashCombine(digest_, m.digest());
    }
  }
  std::uint64_t stateDigest() const override { return digest_; }

 private:
  std::uint64_t digest_ = 0;
};

std::uint64_t runCoinEcho(std::uint64_t seed) {
  std::vector<std::unique_ptr<Process>> ps;
  for (int v = 0; v < 8; ++v) {
    ps.push_back(std::make_unique<CoinEcho>());
  }
  EngineConfig config;
  config.max_rounds = 50;
  config.stop_when_all_done = false;
  Engine engine(std::move(ps), std::make_unique<adv::StaticAdversary>(net::makeRing(8)),
                config, seed);
  engine.run();
  std::uint64_t h = 0;
  for (NodeId v = 0; v < 8; ++v) {
    h = util::hashCombine(h, engine.process(v).stateDigest());
  }
  return h;
}

TEST(Engine, DeterministicReplay) {
  EXPECT_EQ(runCoinEcho(7), runCoinEcho(7));
  EXPECT_NE(runCoinEcho(7), runCoinEcho(8));
}

TEST(Engine, RecordsTopologiesAndActions) {
  const std::vector<std::vector<Scripted::Step>> scripts = {
      {{true, 1}, {false, 0}}, {{false, 0}, {true, 2}}};
  auto ps = scriptedNodes(scripts);
  EngineConfig config;
  config.max_rounds = 2;
  config.stop_when_all_done = false;
  config.record_topologies = true;
  config.record_actions = true;
  Engine engine(std::move(ps), std::make_unique<adv::StaticAdversary>(net::makePath(2)),
                config, 1);
  engine.run();
  ASSERT_EQ(engine.topologies().size(), 2u);
  ASSERT_EQ(engine.actionTrace().size(), 2u);
  EXPECT_TRUE(engine.actionTrace()[0][0].send);
  EXPECT_FALSE(engine.actionTrace()[0][1].send);
  EXPECT_TRUE(engine.actionTrace()[1][1].send);
}

TEST(Engine, PeriodicAdversaryCycles) {
  const std::vector<std::vector<Scripted::Step>> scripts = {
      {{true, 9}, {true, 9}, {true, 9}},
      {{false, 0}, {false, 0}, {false, 0}},
      {{false, 0}, {false, 0}, {false, 0}},
  };
  auto ps = scriptedNodes(scripts);
  const auto* v2 = static_cast<const Scripted*>(ps[2].get());
  std::vector<net::GraphPtr> period = {
      std::make_shared<net::Graph>(3, std::vector<net::Edge>{{0, 1}, {1, 2}}),
      std::make_shared<net::Graph>(3, std::vector<net::Edge>{{0, 2}, {1, 2}}),
  };
  EngineConfig config;
  config.max_rounds = 3;
  config.stop_when_all_done = false;
  Engine engine(std::move(ps),
                std::make_unique<adv::PeriodicAdversary>(period), config, 1);
  engine.run();
  // Node 2 is adjacent to sender 0 only in rounds 2 (and not 1, 3).
  EXPECT_TRUE(v2->deliveries()[0].empty());
  EXPECT_EQ(v2->deliveries()[1], (std::vector<std::uint64_t>{9}));
  EXPECT_TRUE(v2->deliveries()[2].empty());
}

TEST(Engine, PerNodeBitAccounting) {
  // Path 0-1-2; node 0 sends a 16-bit payload both rounds, node 1 sends in
  // round 2 only, node 2 never.
  const std::vector<std::vector<Scripted::Step>> scripts = {
      {{true, 1}, {true, 2}},
      {{false, 0}, {true, 3}},
      {{false, 0}, {false, 0}},
  };
  auto ps = scriptedNodes(scripts);
  EngineConfig config;
  config.max_rounds = 2;
  config.stop_when_all_done = false;
  Engine engine(std::move(ps), std::make_unique<adv::StaticAdversary>(net::makePath(3)),
                config, 1);
  engine.run();
  EXPECT_EQ(engine.result().bits_per_node[0], 32u);
  EXPECT_EQ(engine.result().bits_per_node[1], 16u);
  EXPECT_EQ(engine.result().bits_per_node[2], 0u);
  EXPECT_EQ(engine.result().bits_sent, 48u);
}

TEST(Runner, AggregatesMetrics) {
  const TrialSummary summary = runTrials(16, 99, [](std::uint64_t seed) {
    return std::map<std::string, double>{
        {"seedmod", static_cast<double>(seed % 7)}, {"one", 1.0}};
  });
  EXPECT_EQ(summary.metrics.at("one").count(), 16u);
  EXPECT_DOUBLE_EQ(summary.metrics.at("one").mean(), 1.0);
  EXPECT_EQ(summary.metrics.at("seedmod").count(), 16u);
}

TEST(Runner, DistinctSeedsPerTrial) {
  const TrialSummary summary = runTrials(32, 5, [](std::uint64_t seed) {
    return std::map<std::string, double>{
        {"low32", static_cast<double>(seed & 0xffffffffu)}};
  });
  EXPECT_GT(summary.metrics.at("low32").stddev(), 0.0);
}

}  // namespace
}  // namespace dynet::sim
