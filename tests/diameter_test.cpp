// Property-based round-bound layer for the diameter protocol suite
// (docs/DIAMETER.md): on randomized connected static graphs, across seeds,
// sizes, and the full {soa_state, arena_delivery, topology_deltas} engine
// matrix (all under EngineConfig::duplex),
//
//   diam_exact     reproduces the all-pairs BFS oracle exactly — diameter,
//                  per-node eccentricities, per-source distances, and the
//                  smallest argmax node — in scheduleRounds(n) <= 4n rounds;
//   diam_2approx   outputs exactly ecc(source), which brackets the diameter
//                  as ecc <= D <= 2*ecc;
//   diam_32approx  outputs D-hat with floor(2D/3) <= D-hat <= D (the <= D
//                  side is unconditional — every value is a true distance).
//
// The gadget families then feed the protocols the instances they were built
// to decide: diam_exact must read 4 vs 5 off AchBitGadget and 2p+2 vs 2p+3
// off BkApproxGadget.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "adversary/static_adversaries.h"
#include "lowerbound/distance_lb.h"
#include "net/diameter.h"
#include "net/graph.h"
#include "protocols/diameter_approx.h"
#include "protocols/distance_bfs.h"
#include "sim/engine.h"
#include "sim/message.h"
#include "util/rng.h"

namespace dynet {
namespace {

/// Random connected graph: a random recursive tree plus up to n extra
/// deduplicated chords.  Tree edges guarantee connectivity; chords give the
/// BFS pipelines non-tree shortest paths to disagree about.
net::GraphPtr randomConnectedGraph(sim::NodeId n, std::uint64_t seed) {
  util::Rng rng(util::mix64(seed ^ 0xD1A6ULL));
  std::set<std::pair<sim::NodeId, sim::NodeId>> edges;
  for (sim::NodeId v = 1; v < n; ++v) {
    const auto parent =
        static_cast<sim::NodeId>(rng.below(static_cast<std::uint64_t>(v)));
    edges.insert({parent, v});
  }
  const auto extra = rng.below(static_cast<std::uint64_t>(n));
  for (std::uint64_t i = 0; i < extra; ++i) {
    const auto a =
        static_cast<sim::NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    const auto b =
        static_cast<sim::NodeId>(rng.below(static_cast<std::uint64_t>(n)));
    if (a != b) {
      edges.insert({std::min(a, b), std::max(a, b)});
    }
  }
  std::vector<net::Edge> list;
  list.reserve(edges.size());
  for (const auto& [a, b] : edges) {
    list.push_back({a, b});
  }
  return std::make_shared<net::Graph>(n, std::move(list));
}

struct Oracle {
  std::vector<int> ecc;
  int diameter = 0;
  sim::NodeId argmax = 0;  // smallest node attaining the diameter
};

Oracle oracleFor(const net::Graph& g) {
  Oracle o;
  o.ecc = net::staticEccentricities(g);
  for (std::size_t v = 0; v < o.ecc.size(); ++v) {
    if (o.ecc[v] > o.diameter) {
      o.diameter = o.ecc[v];
      o.argmax = static_cast<sim::NodeId>(v);
    }
  }
  return o;
}

/// Runs `factory` on the static graph under duplex with the given engine
/// flags and hands the finished engine to `inspect`.
template <typename Inspect>
void runDiam(const sim::ProcessFactory& factory, net::GraphPtr g,
             sim::Round max_rounds, std::uint64_t seed, bool soa, bool arena,
             bool deltas, Inspect&& inspect) {
  sim::EngineConfig config;
  config.max_rounds = max_rounds;
  config.duplex = true;
  config.soa_state = soa;
  config.arena_delivery = arena;
  config.topology_deltas = deltas;
  sim::Engine engine(factory,
                     std::make_unique<adv::StaticAdversary>(std::move(g)),
                     config, seed);
  const sim::RunResult r = engine.run();
  inspect(engine, r);
}

constexpr sim::NodeId kSizes[] = {8, 17, 24};
constexpr std::uint64_t kSeeds[] = {1, 2, 3};

TEST(DiamExact, MatchesOracleAcrossSeedsSizesAndEngineMatrix) {
  proto::DiamExactFactory factory;
  for (const sim::NodeId n : kSizes) {
    const sim::Round bound = proto::DiamExactProcess::scheduleRounds(n);
    ASSERT_LE(bound, 4 * n) << "round bound must stay O(n) with c = 4";
    for (const std::uint64_t seed : kSeeds) {
      const net::GraphPtr g = randomConnectedGraph(n, seed);
      const Oracle oracle = oracleFor(*g);
      std::vector<std::vector<int>> dist;
      for (sim::NodeId s = 0; s < n; ++s) {
        dist.push_back(net::bfsDistances(*g, s));
      }
      for (int combo = 0; combo < 8; ++combo) {
        runDiam(factory, g, bound + 4, seed, (combo & 4) != 0,
                (combo & 2) != 0, (combo & 1) != 0,
                [&](sim::Engine& engine, const sim::RunResult& r) {
                  ASSERT_TRUE(r.all_done)
                      << "n=" << n << " seed=" << seed << " combo=" << combo;
                  EXPECT_LE(r.all_done_round, bound);
                  for (sim::NodeId v = 0; v < n; ++v) {
                    const auto& p =
                        dynamic_cast<const proto::DiamExactProcess&>(
                            engine.process(v));
                    EXPECT_EQ(p.output(),
                              static_cast<std::uint64_t>(oracle.diameter))
                        << "node " << v << " n=" << n << " seed=" << seed;
                    EXPECT_EQ(p.eccentricity(),
                              oracle.ecc[static_cast<std::size_t>(v)])
                        << "node " << v;
                    EXPECT_EQ(p.argmaxNode(), oracle.argmax) << "node " << v;
                    for (sim::NodeId s = 0; s < n; ++s) {
                      EXPECT_EQ(p.distanceTo(s),
                                dist[static_cast<std::size_t>(s)]
                                    [static_cast<std::size_t>(v)])
                          << "node " << v << " source " << s;
                    }
                  }
                });
      }
    }
  }
}

TEST(Diam2Approx, EstimateIsSourceEccentricityAndBracketsDiameter) {
  proto::Diam2ApproxFactory factory(0);
  for (const sim::NodeId n : kSizes) {
    const sim::Round bound = proto::Diam2ApproxProcess::scheduleRounds(n);
    ASSERT_LE(bound, 2 * n + 2);
    for (const std::uint64_t seed : kSeeds) {
      const net::GraphPtr g = randomConnectedGraph(n, seed);
      const Oracle oracle = oracleFor(*g);
      for (int combo = 0; combo < 8; ++combo) {
        runDiam(factory, g, bound + 4, seed, (combo & 4) != 0,
                (combo & 2) != 0, (combo & 1) != 0,
                [&](sim::Engine& engine, const sim::RunResult& r) {
                  ASSERT_TRUE(r.all_done)
                      << "n=" << n << " seed=" << seed << " combo=" << combo;
                  EXPECT_LE(r.all_done_round, bound);
                  const auto ecc0 = static_cast<std::uint64_t>(oracle.ecc[0]);
                  for (sim::NodeId v = 0; v < n; ++v) {
                    const std::uint64_t est = engine.process(v).output();
                    EXPECT_EQ(est, ecc0) << "node " << v;
                    EXPECT_LE(est, static_cast<std::uint64_t>(oracle.diameter));
                    EXPECT_GE(2 * est,
                              static_cast<std::uint64_t>(oracle.diameter));
                  }
                });
      }
    }
  }
}

TEST(Diam32Approx, EstimateWithinTwoThirdsBracket) {
  for (const sim::NodeId n : kSizes) {
    const sim::Round bound = proto::Diam32ApproxProcess::scheduleRounds(n);
    for (const std::uint64_t seed : kSeeds) {
      proto::Diam32ApproxFactory factory(seed);
      const net::GraphPtr g = randomConnectedGraph(n, seed);
      const Oracle oracle = oracleFor(*g);
      for (int combo = 0; combo < 8; ++combo) {
        runDiam(factory, g, bound + 4, seed, (combo & 4) != 0,
                (combo & 2) != 0, (combo & 1) != 0,
                [&](sim::Engine& engine, const sim::RunResult& r) {
                  ASSERT_TRUE(r.all_done)
                      << "n=" << n << " seed=" << seed << " combo=" << combo;
                  EXPECT_LE(r.all_done_round, bound);
                  for (sim::NodeId v = 0; v < n; ++v) {
                    const auto est =
                        static_cast<int>(engine.process(v).output());
                    EXPECT_LE(est, oracle.diameter) << "node " << v;
                    EXPECT_GE(est, 2 * oracle.diameter / 3) << "node " << v;
                    EXPECT_EQ(est, static_cast<int>(engine.process(0).output()))
                        << "nodes must agree on D-hat";
                  }
                });
      }
    }
  }
}

TEST(Diam32Approx, SampleIsDeterministicSortedAndSized) {
  for (const sim::NodeId n : {4, 20, 100, 400}) {
    const sim::NodeId k = proto::Diam32ApproxProcess::sampleSize(n);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, n);
    const auto s1 = proto::Diam32ApproxProcess::sampleSources(n, 77);
    const auto s2 = proto::Diam32ApproxProcess::sampleSources(n, 77);
    EXPECT_EQ(s1, s2) << "sample must be a pure function of (n, seed)";
    EXPECT_EQ(static_cast<sim::NodeId>(s1.size()), k);
    EXPECT_TRUE(std::is_sorted(s1.begin(), s1.end()));
    EXPECT_TRUE(std::adjacent_find(s1.begin(), s1.end()) == s1.end());
    for (const sim::NodeId v : s1) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, n);
    }
  }
}

// ------------------------------------------------ gadget decision checks

TEST(DiamExact, ReadsDisjointnessOffTheAchGadget) {
  proto::DiamExactFactory factory;
  for (const bool intersect : {false, true}) {
    const lb::AchBitGadget gadget(36, /*width=*/0, /*seed=*/5, intersect);
    const sim::Round bound = proto::DiamExactProcess::scheduleRounds(36);
    runDiam(factory, gadget.graph(), bound + 4, 9, true, true, true,
            [&](sim::Engine& engine, const sim::RunResult& r) {
              ASSERT_TRUE(r.all_done);
              EXPECT_EQ(engine.process(0).output(),
                        static_cast<std::uint64_t>(intersect ? 5 : 4));
            });
  }
}

TEST(DiamExact, ReadsOrthogonalityOffTheBkGadget) {
  proto::DiamExactFactory factory;
  for (const int stretch : {0, 2}) {
    for (const bool orthogonal : {false, true}) {
      const lb::BkApproxGadget gadget(36, /*width=*/0, stretch, /*seed=*/5,
                                      orthogonal);
      const sim::Round bound = proto::DiamExactProcess::scheduleRounds(36);
      runDiam(factory, gadget.graph(), bound + 4, 9, true, true, true,
              [&](sim::Engine& engine, const sim::RunResult& r) {
                ASSERT_TRUE(r.all_done);
                EXPECT_EQ(engine.process(0).output(),
                          static_cast<std::uint64_t>(gadget.expectedDiameter()))
                    << "stretch=" << stretch
                    << " orthogonal=" << orthogonal;
              });
    }
  }
}

// ---------------------------------------------------- decode tolerance

TEST(DecodeFields, RejectsWrongShapeAndOutOfRange) {
  const int width = 5;
  const sim::Message ok =
      sim::MessageBuilder().put(12, width).put(7, width).build();
  std::uint64_t out[2] = {0, 0};
  EXPECT_TRUE(proto::decodeFields(ok, width, 2, 16, out));
  EXPECT_EQ(out[0], 12u);
  EXPECT_EQ(out[1], 7u);
  // Field value 12 >= bound 10: reject.
  EXPECT_FALSE(proto::decodeFields(ok, width, 2, 10, out));
  // Wrong field count for the bit size: reject.
  EXPECT_FALSE(proto::decodeFields(ok, width, 1, 16, out));
  // Wrong width: reject.
  EXPECT_FALSE(proto::decodeFields(ok, width + 1, 2, 16, out));
  // Empty message: reject.
  EXPECT_FALSE(proto::decodeFields(sim::Message(), width, 2, 16, out));
}

}  // namespace
}  // namespace dynet
