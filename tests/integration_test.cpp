// Cross-module integration tests: canonical delivery order, engine ↔
// diameter interplay, reduction determinism, and end-to-end protocol runs
// on the paper's composed networks.
#include <gtest/gtest.h>

#include "adversary/static_adversaries.h"
#include "lowerbound/composition.h"
#include "lowerbound/reduction.h"
#include "net/diameter.h"
#include "protocols/cflood.h"
#include "protocols/flood.h"
#include "protocols/oracles.h"
#include "sim/engine.h"

namespace dynet {
namespace {

using sim::NodeId;
using sim::Round;

/// Records raw inbox payload sequences to observe delivery order.
class OrderProbe : public sim::Process {
 public:
  explicit OrderProbe(NodeId node) : node_(node) {}

  sim::Action onRound(Round /*round*/, util::CoinStream& /*coins*/) override {
    sim::Action a;
    if (node_ != 0) {  // everyone but node 0 sends its id
      a.send = true;
      a.msg = sim::MessageBuilder()
                  .put(static_cast<std::uint64_t>(node_), 16)
                  .build();
    }
    return a;
  }

  void onDeliver(Round /*round*/, bool /*sent*/,
                 std::span<const sim::Message> received) override {
    order_.clear();
    for (const sim::Message& m : received) {
      sim::MessageReader r(m);
      order_.push_back(static_cast<NodeId>(r.get(16)));
    }
  }

  const std::vector<NodeId>& order() const { return order_; }

 private:
  NodeId node_;
  std::vector<NodeId> order_;
};

TEST(Delivery, CanonicalAscendingSenderOrder) {
  // Star around node 0 with edges inserted in scrambled order: the inbox
  // must still arrive sorted by sender id.
  const NodeId n = 9;
  std::vector<net::Edge> edges;
  for (const NodeId v : {5, 2, 8, 1, 7, 3, 6, 4}) {
    edges.push_back({v, 0});
  }
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(std::make_unique<OrderProbe>(v));
  }
  const auto* probe = static_cast<const OrderProbe*>(ps[0].get());
  sim::EngineConfig config;
  config.max_rounds = 1;
  config.stop_when_all_done = false;
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::StaticAdversary>(
                         std::make_shared<net::Graph>(n, edges)),
                     config, 1);
  engine.run();
  EXPECT_EQ(probe->order(), (std::vector<NodeId>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Reduction, DeterministicAcrossRuns) {
  util::Rng rng(2);
  const cc::Instance inst = cc::randomInstance(2, 21, rng, 0);
  const lb::CFloodNetwork network(inst);
  const proto::CFloodFactory oracle(network.source(), 1, 2,
                                    proto::FloodMode::kRandomized, 8);
  const auto r1 = lb::runCFloodReduction(inst, oracle, 55);
  const auto r2 = lb::runCFloodReduction(inst, oracle, 55);
  EXPECT_EQ(r1.bits_alice_to_bob, r2.bits_alice_to_bob);
  EXPECT_EQ(r1.bits_bob_to_alice, r2.bits_bob_to_alice);
  EXPECT_EQ(r1.claimed_disj, r2.claimed_disj);
  EXPECT_EQ(r1.actions_checked, r2.actions_checked);
  const auto r3 = lb::runCFloodReduction(inst, oracle, 56);
  EXPECT_EQ(r3.claimed_disj, r1.claimed_disj);  // same decision
}

TEST(Reduction, BitsScaleWithHorizonNotNetworkSize) {
  // The whole point of the simulation argument: communication tracks the
  // horizon (rounds), not N.  Quadrupling q at fixed oracle multiplies the
  // bits by about the horizon ratio, far below the N ratio... and in
  // particular total bits stay under a small multiple of horizon * log N.
  util::Rng rng(5);
  const cc::Instance small = cc::randomInstance(2, 29, rng, 1);
  const cc::Instance large = cc::randomInstance(2, 121, rng, 1);
  const proto::CFloodFactory oracle_s(0, 1, 2, proto::FloodMode::kRandomized, 8);
  const auto rs = lb::runCFloodReduction(small, oracle_s, 9);
  const auto rl = lb::runCFloodReduction(large, oracle_s, 9);
  const double bits_ratio =
      static_cast<double>(rl.bits_alice_to_bob + rl.bits_bob_to_alice) /
      static_cast<double>(rs.bits_alice_to_bob + rs.bits_bob_to_alice);
  const double horizon_ratio =
      static_cast<double>(rl.horizon) / static_cast<double>(rs.horizon);
  const double n_ratio =
      static_cast<double>(rl.num_nodes) / static_cast<double>(rs.num_nodes);
  EXPECT_LT(bits_ratio, 1.7 * horizon_ratio);
  EXPECT_LT(bits_ratio, n_ratio * 1.7);
}

TEST(ComposedNetworks, EngineConnectivityHoldsEveryRoundPastHorizon) {
  // The model demands connectivity in *every* round; run well past the
  // horizon (where all removals have long fired) on both compositions.
  util::Rng rng(8);
  for (const int disj : {0, 1}) {
    const cc::Instance inst = cc::randomInstance(2, 9, rng, disj);
    {
      const lb::CFloodNetwork network(inst);
      proto::RandomBabblerFactory factory(16);
      std::vector<std::unique_ptr<sim::Process>> ps;
      for (NodeId v = 0; v < network.numNodes(); ++v) {
        ps.push_back(factory.create(v, network.numNodes()));
      }
      sim::EngineConfig config;
      config.max_rounds = 6 * inst.q;  // far past all removal rounds
      config.stop_when_all_done = false;
      sim::Engine engine(std::move(ps), network.referenceAdversary(), config, 3);
      EXPECT_NO_THROW(engine.run()) << "disj=" << disj;
    }
    {
      const lb::ConsensusNetwork network(inst);
      proto::RandomBabblerFactory factory(16);
      std::vector<std::unique_ptr<sim::Process>> ps;
      for (NodeId v = 0; v < network.numNodes(); ++v) {
        ps.push_back(factory.create(v, network.numNodes()));
      }
      sim::EngineConfig config;
      config.max_rounds = 6 * inst.q;
      config.stop_when_all_done = false;
      sim::Engine engine(std::move(ps), network.referenceAdversary(), config, 3);
      EXPECT_NO_THROW(engine.run()) << "disj=" << disj;
    }
  }
}

TEST(ComposedNetworks, CFloodDiameterEventuallyFiniteOnDisjZero) {
  // Even with DISJ = 0 the network stays connected, so the diameter is
  // finite — just Ω(q): the line must be traversed.
  util::Rng rng(9);
  const cc::Instance inst = cc::randomInstance(1, 13, rng, 0);
  const lb::CFloodNetwork network(inst);
  proto::RandomBabblerFactory factory(16);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < network.numNodes(); ++v) {
    ps.push_back(factory.create(v, network.numNodes()));
  }
  sim::EngineConfig config;
  config.max_rounds = 8 * inst.q;
  config.record_topologies = true;
  config.stop_when_all_done = false;
  sim::Engine engine(std::move(ps), network.referenceAdversary(), config, 4);
  engine.run();
  const int ecc = net::causalEccentricity(engine.topologies(),
                                          network.source(), 0);
  EXPECT_GT(ecc, network.horizon());
  EXPECT_LT(ecc, 8 * inst.q);
}

TEST(Determinism, EngineFullTraceStableUnderRebuild) {
  // Rebuilding identical processes + adversary + seed reproduces the exact
  // action trace (prereq for the whole reduction methodology).
  util::Rng rng(10);
  const cc::Instance inst = cc::randomInstance(1, 9, rng, 0);
  const lb::ConsensusNetwork network(inst);
  auto runTrace = [&](std::uint64_t seed) {
    proto::RandomBabblerFactory factory(16);
    std::vector<std::unique_ptr<sim::Process>> ps;
    for (NodeId v = 0; v < network.numNodes(); ++v) {
      ps.push_back(factory.create(v, network.numNodes()));
    }
    sim::EngineConfig config;
    config.max_rounds = 2 * inst.q;
    config.record_actions = true;
    config.stop_when_all_done = false;
    sim::Engine engine(std::move(ps), network.referenceAdversary(), config,
                       seed);
    engine.run();
    return engine.actionTrace();
  };
  const auto t1 = runTrace(42);
  const auto t2 = runTrace(42);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t r = 0; r < t1.size(); ++r) {
    for (std::size_t v = 0; v < t1[r].size(); ++v) {
      EXPECT_TRUE(t1[r][v] == t2[r][v]) << "r=" << r << " v=" << v;
    }
  }
  const auto t3 = runTrace(43);
  bool any_diff = false;
  for (std::size_t r = 0; r < t1.size() && !any_diff; ++r) {
    for (std::size_t v = 0; v < t1[r].size() && !any_diff; ++v) {
      any_diff = !(t1[r][v] == t3[r][v]);
    }
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace dynet
