// Tests for the extension layer: dual-graph model, churn adversaries and
// metrics, HEAR-FROM-N, the cascade ablation, and the §7 pre-count
// ablation instrumentation.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/churn_adversaries.h"
#include "adversary/dual_graph.h"
#include "adversary/static_adversaries.h"
#include "lowerbound/lambda.h"
#include "lowerbound/spoiled.h"
#include "net/churn.h"
#include "net/diameter.h"
#include "protocols/hear_from_n.h"
#include "protocols/leader_unknown_d.h"
#include "protocols/oracles.h"
#include "sim/engine.h"

namespace dynet {
namespace {

using sim::NodeId;
using sim::Round;

std::vector<sim::Action> allReceiving(NodeId n) {
  return std::vector<sim::Action>(static_cast<std::size_t>(n));
}

// --- Dual graph ---

TEST(DualGraph, ReliableMustBeConnected) {
  EXPECT_THROW(adv::DualGraphAdversary(
                   std::make_shared<net::Graph>(3, std::vector<net::Edge>{}),
                   {}, adv::DualGraphPolicy::kRandom, 0.5, 1),
               util::CheckError);
}

TEST(DualGraph, OffPolicyIsExactlyReliable) {
  auto adversary = adv::makeRingWithChords(16, adv::DualGraphPolicy::kAdversarialOff,
                                           0.0, 1);
  const auto actions = allReceiving(16);
  auto g = adversary->topology(1, {actions});
  EXPECT_EQ(g->numEdges(), 16u);  // the ring only
  EXPECT_TRUE(g->connected());
}

TEST(DualGraph, GrantedPolicyAddsAllChords) {
  auto adversary =
      adv::makeRingWithChords(16, adv::DualGraphPolicy::kRandom, 1.0, 1);
  const auto actions = allReceiving(16);
  auto g = adversary->topology(1, {actions});
  EXPECT_GT(g->numEdges(), 16u);
  // Strides 2,4,8: stride-2 chord (0,2) must be there.
  EXPECT_TRUE(g->hasEdge(0, 2));
}

TEST(DualGraph, DuplicateUnreliableEdgesDropped) {
  // Ring edge (0,1) also listed as unreliable must not double-appear.
  adv::DualGraphAdversary adversary(net::makeRing(6), {{0, 1}, {0, 3}},
                                    adv::DualGraphPolicy::kRandom, 1.0, 1);
  const auto actions = allReceiving(6);
  auto g = adversary.topology(1, {actions});
  int count01 = 0;
  for (const auto& e : g->edges()) {
    if ((e.a == 0 && e.b == 1) || (e.a == 1 && e.b == 0)) {
      ++count01;
    }
  }
  EXPECT_EQ(count01, 1);
  EXPECT_TRUE(g->hasEdge(0, 3));
}

TEST(DualGraph, FlakyGrantsOnlyReceiverPairs) {
  auto adversary =
      adv::makeRingWithChords(12, adv::DualGraphPolicy::kFlaky, 0.0, 1);
  std::vector<sim::Action> actions(12);
  for (NodeId v = 0; v < 12; v += 2) {
    actions[static_cast<std::size_t>(v)].send = true;  // evens send
  }
  auto g = adversary->topology(1, {actions});
  for (const auto& e : g->edges()) {
    const bool ring = (e.b == (e.a + 1) % 12) || (e.a == (e.b + 1) % 12);
    if (!ring) {
      EXPECT_FALSE(actions[static_cast<std::size_t>(e.a)].send) << e.a;
      EXPECT_FALSE(actions[static_cast<std::size_t>(e.b)].send) << e.b;
    }
  }
}

TEST(DualGraph, GrantedDiameterLogVsOffDiameterLinear) {
  const NodeId n = 64;
  const auto actions = allReceiving(n);
  auto measure = [&](adv::DualGraphPolicy policy, double p) {
    auto adversary = adv::makeRingWithChords(n, policy, p, 2);
    net::TopologySeq topo;
    for (Round r = 1; r <= 2 * n; ++r) {
      topo.push_back(adversary->topology(r, {actions}));
    }
    return net::allSourcesEccentricity(topo, 0);
  };
  const int granted = measure(adv::DualGraphPolicy::kRandom, 1.0);
  const int off = measure(adv::DualGraphPolicy::kAdversarialOff, 0.0);
  EXPECT_LE(granted, 8);
  EXPECT_EQ(off, n / 2);
}

// --- Churn adversaries & metrics ---

TEST(EdgeChurn, ZeroChurnIsStatic) {
  adv::EdgeChurnAdversary adversary(20, 0, 5);
  const auto actions = allReceiving(20);
  auto g1 = adversary.topology(1, {actions});
  auto g2 = adversary.topology(2, {actions});
  EXPECT_EQ(g1.get(), g2.get());
  EXPECT_TRUE(g1->connected());
  EXPECT_EQ(g1->numEdges(), 19u);
}

TEST(EdgeChurn, StaysSpanningTreeUnderChurn) {
  adv::EdgeChurnAdversary adversary(40, 4, 5);
  const auto actions = allReceiving(40);
  for (Round r = 1; r <= 50; ++r) {
    auto g = adversary.topology(r, {actions});
    ASSERT_EQ(g->numEdges(), 39u) << r;
    ASSERT_TRUE(g->connected()) << r;
  }
}

TEST(RandomGraph, ConnectedAndDensityScalesWithP) {
  const NodeId n = 60;
  const auto actions = allReceiving(n);
  adv::RandomGraphAdversary sparse(n, 0.0, 3);
  adv::RandomGraphAdversary dense(n, 0.2, 3);
  std::size_t sparse_edges = 0;
  std::size_t dense_edges = 0;
  for (Round r = 1; r <= 10; ++r) {
    auto gs = sparse.topology(r, {actions});
    auto gd = dense.topology(r, {actions});
    ASSERT_TRUE(gs->connected());
    ASSERT_TRUE(gd->connected());
    sparse_edges += gs->numEdges();
    dense_edges += gd->numEdges();
  }
  EXPECT_EQ(sparse_edges, 10u * 59u);  // tree only
  // Expected extra edges ~ 0.2 * C(60,2) = 354 per round.
  EXPECT_GT(dense_edges, 10u * 250u);
  EXPECT_LT(dense_edges, 10u * 500u);
}

TEST(RandomGraph, NoDuplicateEdges) {
  adv::RandomGraphAdversary adversary(30, 0.3, 9);
  const auto actions = allReceiving(30);
  auto g = adversary.topology(1, {actions});
  std::set<std::pair<NodeId, NodeId>> seen;
  for (const auto& e : g->edges()) {
    const auto key = std::minmax(e.a, e.b);
    EXPECT_TRUE(seen.insert({key.first, key.second}).second)
        << e.a << "," << e.b;
  }
}

TEST(ChurnMetrics, JaccardBounds) {
  auto path = net::makePath(10);
  auto ring = net::makeRing(10);
  EXPECT_DOUBLE_EQ(net::edgeJaccard(*path, *path), 1.0);
  // Ring = path + closing edge: 9 common, 10 union.
  EXPECT_DOUBLE_EQ(net::edgeJaccard(*path, *ring), 0.9);
  auto star = net::makeStar(10, 5);
  const double j = net::edgeJaccard(*path, *star);
  EXPECT_GE(j, 0.0);
  EXPECT_LT(j, 0.3);
}

TEST(ChurnMetrics, MeanConsecutive) {
  net::TopologySeq topo = {net::makePath(8), net::makePath(8), net::makeRing(8)};
  const double mean = net::meanConsecutiveJaccard(topo);
  EXPECT_NEAR(mean, (1.0 + 7.0 / 8.0) / 2.0, 1e-12);
}

TEST(ChurnMetrics, DegreeStats) {
  const auto stats = net::degreeStats(*net::makeStar(9, 0));
  EXPECT_EQ(stats.max, 8);
  EXPECT_EQ(stats.min, 1);
  EXPECT_NEAR(stats.mean, 16.0 / 9.0, 1e-12);
}

// --- HEAR-FROM-N ---

TEST(HearFromN, ClaimsOnceEstimateClears) {
  const NodeId n = 48;
  const int k = 128;
  const Round budget = proto::countingRounds(k, 8, n, 3);
  proto::HearFromNFactory factory(k, budget, 7, 0.25);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = budget + 1;
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::EdgeChurnAdversary>(n, 2, 7),
                     config, 7);
  const auto result = engine.run();
  ASSERT_TRUE(result.all_done);
  for (NodeId v = 0; v < n; v += 11) {
    const auto* p =
        dynamic_cast<const proto::HearFromNProcess*>(&engine.process(v));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->output(), 1u) << v;
    EXPECT_GT(p->claimRound(), 0) << v;
    EXPECT_LE(p->claimRound(), budget) << v;
  }
}

TEST(HearFromN, DoesNotClaimWithTinyBudget) {
  const NodeId n = 64;
  proto::HearFromNFactory factory(128, /*max_rounds=*/64, 7, 0.1);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (NodeId v = 0; v < n; ++v) {
    ps.push_back(factory.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = 65;
  sim::Engine engine(std::move(ps),
                     std::make_unique<adv::StaticAdversary>(net::makePath(n)),
                     config, 7);
  engine.run();
  const auto* p =
      dynamic_cast<const proto::HearFromNProcess*>(&engine.process(n / 2));
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->output(), 0u);  // timed out without claiming
}

// --- Ablations ---

TEST(CascadeAblation, SimultaneousRemovalBreaksLemma4) {
  cc::Instance inst;
  inst.n = 1;
  inst.q = 15;
  inst.x = {0};
  inst.y = {0};
  auto probe = [&](lb::CascadeMode mode) {
    lb::LambdaNet net(inst, 0, mode);
    proto::RandomBabblerFactory factory(16);
    std::vector<std::unique_ptr<sim::Process>> ps;
    for (NodeId v = 0; v < net.numNodes(); ++v) {
      ps.push_back(factory.create(v, net.numNodes()));
    }
    class A : public sim::Adversary {
     public:
      explicit A(const lb::LambdaNet& n) : net_(n) {}
      net::GraphPtr topology(Round r, const sim::RoundObservation& obs) override {
        std::vector<net::Edge> edges;
        net_.appendReferenceEdges(r, obs.actions, edges);
        return std::make_shared<net::Graph>(net_.numNodes(), std::move(edges));
      }
      NodeId numNodes() const override { return net_.numNodes(); }

     private:
      const lb::LambdaNet& net_;
    };
    sim::EngineConfig config;
    config.max_rounds = inst.q;
    config.record_topologies = true;
    config.record_actions = true;
    config.stop_when_all_done = false;
    sim::Engine engine(std::move(ps), std::make_unique<A>(net), config, 3);
    engine.run();
    std::vector<Round> spoiled(static_cast<std::size_t>(net.numNodes()),
                               lb::kNever);
    net.fillSpoiledFrom(lb::Party::kAlice, spoiled);
    return lb::checkNeighborhoodLemma(
               net.numNodes(), spoiled,
               [&net](Round r) {
                 std::vector<net::Edge> edges;
                 net.appendPartyEdges(lb::Party::kAlice, r, edges);
                 return edges;
               },
               engine.topologies(), engine.actionTrace(), {net.b()},
               (inst.q - 1) / 2)
        .size();
  };
  EXPECT_EQ(probe(lb::CascadeMode::kCascading), 0u);
  EXPECT_GT(probe(lb::CascadeMode::kSimultaneous), 0u);
}

TEST(PrecountAblation, SkipProducesMoreLockAttempts) {
  const NodeId n = 48;
  auto run = [&](bool skip) {
    proto::LeaderConfig config;
    config.n_estimate = 1.1 * n;
    config.c = 0.25;
    config.k = 64;
    config.skip_precount = skip;
    proto::LeaderElectFactory factory(config, 123);
    std::vector<std::unique_ptr<sim::Process>> ps;
    for (NodeId v = 0; v < n; ++v) {
      ps.push_back(factory.create(v, n));
    }
    sim::EngineConfig engine_config;
    engine_config.max_rounds = 5'000'000;
    sim::Engine engine(std::move(ps),
                       std::make_unique<adv::StaticAdversary>(net::makeRing(n)),
                       engine_config, 9);
    engine.run();
    int locks = 0;
    for (NodeId v = 0; v < n; ++v) {
      const auto* lp =
          dynamic_cast<const proto::LeaderElectProcess*>(&engine.process(v));
      if (lp != nullptr) {
        locks += lp->lockAttempts();
      }
    }
    return locks;
  };
  const int with_precount = run(false);
  const int without = run(true);
  EXPECT_LE(with_precount, 2);
  EXPECT_GT(without, with_precount);
}

}  // namespace
}  // namespace dynet
