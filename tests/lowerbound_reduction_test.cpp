// The executable lower-bound machinery: Lemma 3/4 property checks on real
// executions, the diameter dichotomy of the compositions, the mounting
// point's causal insulation, and the full Alice/Bob reduction with
// cross-validation against the reference execution (Lemma 5).
#include <gtest/gtest.h>

#include <memory>

#include "lowerbound/composition.h"
#include "lowerbound/party.h"
#include "lowerbound/reduction.h"
#include "lowerbound/spoiled.h"
#include "net/diameter.h"
#include "protocols/cflood.h"
#include "protocols/oracles.h"
#include "sim/engine.h"

namespace dynet::lb {
namespace {

/// Runs the reference execution of `factory` on the given composed network
/// for `rounds`, recording everything.
template <typename Network>
std::unique_ptr<sim::Engine> runReference(const Network& network,
                                          const sim::ProcessFactory& factory,
                                          Round rounds, std::uint64_t seed) {
  std::vector<std::unique_ptr<sim::Process>> processes;
  for (NodeId v = 0; v < network.numNodes(); ++v) {
    processes.push_back(factory.create(v, network.numNodes()));
  }
  sim::EngineConfig config;
  config.max_rounds = rounds;
  config.record_topologies = true;
  config.record_actions = true;
  config.stop_when_all_done = false;
  auto engine = std::make_unique<sim::Engine>(
      std::move(processes), network.referenceAdversary(), config, seed);
  engine->run();
  return engine;
}

class LemmaSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LemmaSweep, NeighborhoodLemmaHoldsOnCFloodComposition) {
  const auto [q, n, force] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(q) * 131 + n * 17 + force);
  for (int trial = 0; trial < 4; ++trial) {
    const cc::Instance inst = cc::randomInstance(n, q, rng, force);
    const CFloodNetwork network(inst);
    const proto::RandomBabblerFactory babbler(24);
    const std::uint64_t seed = rng.u64();
    auto engine = runReference(network, babbler, network.horizon(), seed);
    for (const Party party : {Party::kAlice, Party::kBob}) {
      const auto violations = checkNeighborhoodLemma(
          network.numNodes(), network.spoiledFrom(party),
          [&network, party](Round r) { return network.partyEdges(party, r); },
          engine->topologies(), engine->actionTrace(),
          network.forwardedNodes(party == Party::kAlice ? Party::kBob
                                                        : Party::kAlice),
          network.horizon());
      EXPECT_TRUE(violations.empty())
          << cc::describe(inst) << " party="
          << (party == Party::kAlice ? "alice" : "bob") << " first: round "
          << (violations.empty() ? 0 : violations[0].round) << " node "
          << (violations.empty() ? 0 : violations[0].node) << " "
          << (violations.empty() ? "" : violations[0].what);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Instances, LemmaSweep,
                         ::testing::Combine(::testing::Values(5, 9, 15),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(0, 1)));

class ConsensusLemmaSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ConsensusLemmaSweep, NeighborhoodLemmaHoldsOnConsensusComposition) {
  const auto [q, n, force] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(q) * 733 + n * 29 + force);
  for (int trial = 0; trial < 4; ++trial) {
    const cc::Instance inst = cc::randomInstance(n, q, rng, force);
    const ConsensusNetwork network(inst);
    const proto::RandomBabblerFactory babbler(24);
    const std::uint64_t seed = rng.u64();
    auto engine = runReference(network, babbler, network.horizon(), seed);
    for (const Party party : {Party::kAlice, Party::kBob}) {
      const auto violations = checkNeighborhoodLemma(
          network.numNodes(), network.spoiledFrom(party),
          [&network, party](Round r) { return network.partyEdges(party, r); },
          engine->topologies(), engine->actionTrace(),
          network.forwardedNodes(party == Party::kAlice ? Party::kBob
                                                        : Party::kAlice),
          network.horizon());
      EXPECT_TRUE(violations.empty()) << cc::describe(inst);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Instances, ConsensusLemmaSweep,
                         ::testing::Combine(::testing::Values(5, 9, 15),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(0, 1)));

TEST(DiameterDichotomy, CFloodComposition) {
  util::Rng rng(21);
  const int q = 15;
  for (int trial = 0; trial < 3; ++trial) {
    // DISJ = 1: diameter at most 10 (paper's bound for the composition).
    {
      const cc::Instance inst = cc::randomInstance(2, q, rng, 1);
      const CFloodNetwork network(inst);
      const proto::RandomBabblerFactory babbler(16);
      auto engine =
          runReference(network, babbler, network.horizon() + 12, rng.u64());
      const int ecc = net::allSourcesEccentricity(engine->topologies(), 0);
      ASSERT_GT(ecc, 0);
      EXPECT_LE(ecc, 10) << cc::describe(inst);
    }
    // DISJ = 0: the far end of the |0,0 line is not causally reachable from
    // the source within the horizon (q-1)/2.
    {
      const cc::Instance inst = cc::randomInstance(2, q, rng, 0);
      const CFloodNetwork network(inst);
      const proto::RandomBabblerFactory babbler(16);
      auto engine =
          runReference(network, babbler, network.horizon(), rng.u64());
      const auto reach = net::causalReach(engine->topologies(),
                                          network.source(), 0,
                                          network.horizon());
      EXPECT_FALSE(net::bitmapTest(reach, network.farLineNode()))
          << cc::describe(inst);
    }
  }
}

TEST(MountingPoint, CausallyInsulatedForHorizonRounds) {
  // Paper §5: it takes Ω(q) rounds for a mounting point to causally affect
  // all other nodes — in particular A_Λ and B_Λ stay untouched within the
  // horizon.
  util::Rng rng(22);
  const int q = 15;
  const cc::Instance inst = cc::randomInstance(2, q, rng, 0);
  const ConsensusNetwork network(inst);
  ASSERT_TRUE(network.hasUpsilon());
  const proto::RandomBabblerFactory babbler(16);
  auto engine = runReference(network, babbler, network.horizon() + 6, rng.u64());
  const NodeId mount = network.lambda().mountingPoints().front();
  const auto reach = net::causalReach(engine->topologies(), mount, 0,
                                      network.horizon());
  EXPECT_FALSE(net::bitmapTest(reach, network.lambda().a()));
  EXPECT_FALSE(net::bitmapTest(reach, network.lambda().b()));
  // But it does reach them eventually (connectivity is never broken).
  const auto reach_later = net::causalReach(engine->topologies(), mount, 0,
                                            network.horizon() + 4);
  EXPECT_TRUE(net::bitmapTest(reach_later, network.lambda().a()));
}

TEST(MountingPoint, UpsilonValuesInsulatedFromLambdaSpecials) {
  // Information from the Υ side cannot touch A_Λ within the horizon: the
  // only path crosses both mounting points.
  util::Rng rng(23);
  const cc::Instance inst = cc::randomInstance(1, 15, rng, 0);
  const ConsensusNetwork network(inst);
  const proto::RandomBabblerFactory babbler(16);
  auto engine = runReference(network, babbler, network.horizon(), rng.u64());
  const NodeId upsilon_a = network.upsilon().a();
  const auto reach = net::causalReach(engine->topologies(), upsilon_a, 0,
                                      network.horizon());
  EXPECT_FALSE(net::bitmapTest(reach, network.lambda().a()));
  EXPECT_FALSE(net::bitmapTest(reach, network.lambda().b()));
}

class CFloodReductionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CFloodReductionSweep, SimulationMatchesReferenceExactly) {
  const auto [q, force] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(q) * 37 + force);
  for (int trial = 0; trial < 3; ++trial) {
    const cc::Instance inst = cc::randomInstance(2, q, rng, force);
    const CFloodNetwork network(inst);
    // Optimistic oracle: wait 12 rounds (enough for any DISJ=1 composition,
    // whose diameter is at most 10).  Randomized flooding exercises the
    // receive-conditional adversary rules.
    const proto::CFloodFactory oracle(network.source(), /*token=*/0x2a,
                                      /*token_bits=*/8,
                                      proto::FloodMode::kRandomized,
                                      /*wait_rounds=*/12);
    const ReductionResult result =
        runCFloodReduction(inst, oracle, rng.u64());
    EXPECT_TRUE(result.simulation_consistent) << cc::describe(inst);
    EXPECT_GT(result.actions_checked, 0u);
    EXPECT_EQ(result.disj_truth, force);
    // Channel cost: per round each party forwards 2 specials, each costing
    // at most 1 + budget bits.
    const std::uint64_t per_round_cap =
        2 * (1 + static_cast<std::uint64_t>(
                     sim::defaultBudgetBits(network.numNodes())));
    EXPECT_LE(result.bits_alice_to_bob,
              per_round_cap * static_cast<std::uint64_t>(result.horizon));
    EXPECT_LE(result.bits_bob_to_alice,
              per_round_cap * static_cast<std::uint64_t>(result.horizon));
    EXPECT_GE(result.bits_alice_to_bob,
              2 * static_cast<std::uint64_t>(result.horizon));
  }
}

INSTANTIATE_TEST_SUITE_P(Qs, CFloodReductionSweep,
                         ::testing::Combine(::testing::Values(29, 41),
                                            ::testing::Values(0, 1)));

TEST(CFloodReduction, DichotomyWithDeterministicOracle) {
  util::Rng rng(31);
  const int q = 41;  // horizon 20 > oracle wait 12
  // DISJ = 1: the optimistic oracle terminates within the horizon AND its
  // output is correct (every node got the token by then).
  {
    const cc::Instance inst = cc::randomInstance(2, q, rng, 1);
    const CFloodNetwork network(inst);
    const proto::CFloodFactory oracle(network.source(), 0x2a, 8,
                                      proto::FloodMode::kDeterministic, 12);
    const ReductionResult result = runCFloodReduction(inst, oracle, rng.u64());
    EXPECT_TRUE(result.simulation_consistent);
    EXPECT_EQ(result.claimed_disj, 1);
    EXPECT_TRUE(result.oracle_output_correct) << cc::describe(inst);
    EXPECT_EQ(result.token_holders_at_horizon, result.num_nodes);
  }
  // DISJ = 0: the same fast oracle still outputs at round 12, but its output
  // is provably wrong — the far line node cannot have the token.  A correct
  // CFLOOD protocol therefore cannot be this fast: the content of Theorem 6.
  {
    const cc::Instance inst = cc::randomInstance(2, q, rng, 0);
    const CFloodNetwork network(inst);
    const proto::CFloodFactory oracle(network.source(), 0x2a, 8,
                                      proto::FloodMode::kDeterministic, 12);
    const ReductionResult result = runCFloodReduction(inst, oracle, rng.u64());
    EXPECT_TRUE(result.simulation_consistent);
    EXPECT_EQ(result.monitor_done_round, 12);
    EXPECT_FALSE(result.oracle_output_correct) << cc::describe(inst);
    EXPECT_LT(result.token_holders_at_horizon, result.num_nodes);
  }
  // A pessimistic (always-correct) oracle cannot terminate within the
  // horizon, so Alice claims DISJ = 0 — on either instance kind.  Its s is
  // Θ(N) flooding rounds: the cost of not knowing the diameter.
  {
    const cc::Instance inst = cc::randomInstance(2, q, rng, 1);
    const CFloodNetwork network(inst);
    const proto::CFloodFactory oracle(network.source(), 0x2a, 8,
                                      proto::FloodMode::kDeterministic,
                                      network.numNodes() - 1);
    const ReductionResult result = runCFloodReduction(inst, oracle, rng.u64());
    EXPECT_EQ(result.claimed_disj, 0);
    EXPECT_EQ(result.monitor_done_round, -1);
  }
}

TEST(CFloodReduction, BabblerOracleStressesMachinery) {
  util::Rng rng(33);
  for (const int force : {0, 1}) {
    const cc::Instance inst = cc::randomInstance(3, 21, rng, force);
    const proto::RandomBabblerFactory oracle(24);
    const ReductionResult result = runCFloodReduction(inst, oracle, rng.u64());
    EXPECT_TRUE(result.simulation_consistent) << cc::describe(inst);
    EXPECT_GT(result.actions_checked, 1000u);
  }
}

class ConsensusReductionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ConsensusReductionSweep, SimulationMatchesReference) {
  const int force = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(force) + 55);
  for (int trial = 0; trial < 3; ++trial) {
    const cc::Instance inst = cc::randomInstance(2, 29, rng, force);
    const ConsensusNetwork network(inst);
    // The oracle must be num_nodes-independent; widths derive from the
    // largest possible network (2 N_Λ).
    const int key_bits =
        util::bitWidthFor(static_cast<std::uint64_t>(2 * network.lambda().numNodes()) + 2);
    const proto::ConsensusOracleFactory oracle(network.initialValues(),
                                               key_bits, /*total_rounds=*/10);
    const ReductionResult result =
        runConsensusReduction(inst, oracle, rng.u64());
    EXPECT_TRUE(result.simulation_consistent) << cc::describe(inst);
    EXPECT_EQ(result.disj_truth, force);
    // Optimistic oracle always terminates at round 10 < horizon.
    EXPECT_EQ(result.claimed_disj, 1);
    // ...but its output is genuinely correct only when DISJ = 1 (validity:
    // all inputs agree).  With Υ present, agreement is violated.
    EXPECT_EQ(result.oracle_output_correct, force == 1) << cc::describe(inst);
  }
}

INSTANTIATE_TEST_SUITE_P(Disj, ConsensusReductionSweep, ::testing::Values(0, 1));

TEST(PartySim, RejectsOutOfOrderRounds) {
  util::Rng rng(77);
  const cc::Instance inst = cc::randomInstance(1, 9, rng, 1);
  const CFloodNetwork network(inst);
  const proto::RandomBabblerFactory factory(16);
  PartySim alice(
      network.numNodes(), network.spoiledFrom(Party::kAlice),
      [&network](Round r) { return network.partyEdges(Party::kAlice, r); },
      network.forwardedNodes(Party::kAlice),
      network.forwardedNodes(Party::kBob), factory, network.numNodes(), 1);
  alice.computeActions(1);
  EXPECT_THROW(alice.computeActions(2), util::CheckError);  // missing deliver
  // Quiet forwards for Bob's specials (B_Γ, B_Λ receive this round).
  std::vector<Forward> quiet;
  for (const NodeId v : network.forwardedNodes(Party::kBob)) {
    quiet.push_back({v, false, {}});
  }
  alice.deliver(1, quiet);
  EXPECT_THROW(alice.deliver(1, quiet), util::CheckError);  // double deliver
}

TEST(ReductionResult, FigureOneInstanceRunsEndToEnd) {
  // The paper's own example instance, end to end (tiny horizon of 2).
  const cc::Instance inst = cc::figure1Instance();
  const proto::RandomBabblerFactory oracle(16);
  const ReductionResult result = runCFloodReduction(inst, oracle, 99);
  EXPECT_TRUE(result.simulation_consistent);
  EXPECT_EQ(result.disj_truth, 0);
  EXPECT_EQ(result.horizon, 2);
}

}  // namespace
}  // namespace dynet::lb
