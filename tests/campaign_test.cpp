// Campaign-layer coverage: spec parsing and shard expansion, content
// addressing, the crash-safe checkpoint store, retry/backoff policy math,
// and full campaign runs in both execution modes.
//
// The supervision ladder is exercised with REAL subprocess workers (the
// dynet_cli binary from the build tree, via DYNET_TOOLS_DIR) and the
// sabotage hooks: a "crash" shard burns all attempts and is quarantined
// while the campaign completes; a "crash_once" shard fails, backs off,
// retries, and succeeds — the flaky-worker story end to end.  The
// byte-identity pins (in-process == subprocess, interrupted+resumed ==
// uninterrupted) are the determinism contract of docs/CAMPAIGNS.md.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/scheduler.h"
#include "campaign/shard_exec.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "campaign/worker.h"
#include "obs/json.h"
#include "util/check.h"

#ifndef DYNET_TOOLS_DIR
#error "DYNET_TOOLS_DIR must point at the build tree's tools directory"
#endif

namespace dynet::campaign {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  fs::remove_all(path);
  return path;
}

std::string smallSpecText() {
  return R"({
    "name": "t",
    "protocols": ["flood", "leader_known_d"],
    "adversaries": ["static_path", "random_tree"],
    "nodes": [8],
    "seeds": {"base": 7, "count": 4, "per_shard": 2},
    "max_rounds": 5000
  })";
}

TEST(CampaignSpec, HashIsFnv1aOfCanonicalJson) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);  // reference vector
  EXPECT_EQ(hashHex(0), "0000000000000000");
  EXPECT_EQ(hashHex(0xdeadbeefULL), "00000000deadbeef");
  ShardConfig shard;
  EXPECT_EQ(shard.hash(), hashHex(fnv1a64(shard.canonicalJson())));
}

TEST(CampaignSpec, CanonicalJsonRoundTripsThroughParser) {
  // The worker re-derives the hash from the parsed config; any field that
  // does not survive the round trip (e.g. a 64-bit seed squeezed through a
  // double) would break supervisor/worker agreement.
  ShardConfig shard;
  shard.protocol = "leader_unknown_d";
  shard.adversary = "gnp";
  shard.n = 32;
  shard.trials = 3;
  shard.seed_base = 0xdeadbeefcafef00dULL;  // needs > 53 bits
  shard.p = 0.125;
  shard.fault.name = "burst";
  shard.fault.config.crash_fraction = 0.25;
  shard.fault.config.restart = true;
  const ShardConfig parsed =
      parseShardConfig(obs::Json::parse(shard.canonicalJson()));
  EXPECT_EQ(parsed.seed_base, shard.seed_base);
  EXPECT_EQ(parsed.canonicalJson(), shard.canonicalJson());
  EXPECT_EQ(parsed.hash(), shard.hash());
}

TEST(CampaignSpec, ParseRejectsGarbage) {
  EXPECT_THROW(CampaignSpec::parse("{"), util::CheckError);
  EXPECT_THROW(CampaignSpec::parse(R"({"protocols": ["flood"]})"),
               util::CheckError);  // missing adversaries/nodes/seeds
  EXPECT_THROW(CampaignSpec::parse(R"({
    "protocols": ["flood"], "adversaries": ["static_path"],
    "nodes": [8], "seeds": {"count": 1}, "typo_key": 1})"),
               util::CheckError);
  EXPECT_THROW(CampaignSpec::parse(R"({
    "protocols": ["no_such_protocol"], "adversaries": ["static_path"],
    "nodes": [8], "seeds": {"count": 1}})"),
               util::CheckError);
  EXPECT_THROW(CampaignSpec::parse(R"({
    "protocols": ["flood"], "adversaries": ["static_path"],
    "nodes": [8], "seeds": {"count": 0}})"),
               util::CheckError);
  // Unknown sabotage modes must die at parse time, not inside a worker.
  EXPECT_THROW(CampaignSpec::parse(R"({
    "protocols": ["flood"], "adversaries": ["static_path"], "nodes": [8],
    "seeds": {"count": 1}, "faults": [{"name": "x", "sabotage": "maim"}]})"),
               util::CheckError);
}

TEST(CampaignSpec, ExpandShardsCoversTheGridDeterministically) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  const std::vector<ShardConfig> shards = spec.expandShards();
  // 2 protocols x 2 adversaries x 1 n x 1 fault x 2 seed blocks.
  ASSERT_EQ(shards.size(), 8u);
  for (const ShardConfig& shard : shards) {
    EXPECT_EQ(shard.trials, 2);
    EXPECT_EQ(shard.max_rounds, 5000);
  }
  // Blocks of the same cell get distinct derived base seeds.
  EXPECT_NE(shards[0].seed_base, shards[1].seed_base);
  EXPECT_NE(shards[0].hash(), shards[1].hash());
  // Expansion is deterministic (the merge-order guarantee).
  const std::vector<ShardConfig> again =
      CampaignSpec::parse(smallSpecText()).expandShards();
  ASSERT_EQ(again.size(), shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(again[i].canonicalJson(), shards[i].canonicalJson());
  }
}

TEST(CampaignSpec, LastSeedBlockTakesTheRemainder) {
  CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  spec.seed_count = 5;
  spec.seeds_per_shard = 2;
  spec.protocols = {"flood"};
  spec.adversaries = {"static_path"};
  const std::vector<ShardConfig> shards = spec.expandShards();
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].trials, 2);
  EXPECT_EQ(shards[1].trials, 2);
  EXPECT_EQ(shards[2].trials, 1);
}

TEST(RetryPolicy, BackoffDoublesAndCaps) {
  RetryPolicy retry;
  retry.backoff_ms = 100;
  retry.backoff_max_ms = 450;
  EXPECT_EQ(retry.backoffDelayMs(1), 100);
  EXPECT_EQ(retry.backoffDelayMs(2), 200);
  EXPECT_EQ(retry.backoffDelayMs(3), 400);
  EXPECT_EQ(retry.backoffDelayMs(4), 450);  // capped
  EXPECT_EQ(retry.backoffDelayMs(10), 450);
  EXPECT_THROW(retry.backoffDelayMs(0), util::CheckError);
}

TEST(CheckpointStore, CommitLoadQuarantineRoundTrip) {
  CheckpointStore store(freshDir("campaign_store"));
  EXPECT_FALSE(store.hasResult("aa"));
  store.commitResult("aa", "{\"x\":1}");
  EXPECT_TRUE(store.hasResult("aa"));
  EXPECT_EQ(store.loadResult("aa").value(), "{\"x\":1}\n");
  EXPECT_FALSE(store.loadResult("bb").has_value());
  // Commits stage through tmp/ and rename into place; nothing may linger.
  EXPECT_TRUE(fs::is_empty(fs::path(store.dir()) / "tmp"));

  EXPECT_FALSE(store.isQuarantined("cc"));
  store.quarantine("cc", "died: \"segv\"\nrepeatedly", 3);
  EXPECT_TRUE(store.isQuarantined("cc"));
  // The marker must be parseable JSON despite quotes/newlines in the reason.
  const obs::Json marker =
      obs::Json::parse(store.readFile("quarantine/cc.json").value());
  EXPECT_EQ(marker.at("hash").str(), "cc");
  EXPECT_EQ(marker.at("attempts").number(), 3);
  store.clearQuarantine("cc");
  EXPECT_FALSE(store.isQuarantined("cc"));
}

TEST(ShardExec, ResultJsonRoundTrips) {
  ShardResult result;
  result.hash = "00ff";
  result.trials = 2;
  result.metrics["rounds"] = {7, 9.5};
  result.metrics["all_done"] = {1, 1};
  const ShardResult parsed = ShardResult::parseJson(result.toJson());
  EXPECT_EQ(parsed.hash, result.hash);
  EXPECT_EQ(parsed.trials, result.trials);
  EXPECT_EQ(parsed.metrics, result.metrics);
  EXPECT_THROW(ShardResult::parseJson("{\"not_a_shard\":1}"),
               util::CheckError);
  EXPECT_THROW(ShardResult::parseJson("{\"dynet_shard\":1,\"trials\""),
               util::CheckError);
}

TEST(ShardExec, RunShardIsDeterministic) {
  ShardConfig shard;
  shard.protocol = "leader_known_d";
  shard.adversary = "random_tree";
  shard.n = 12;
  shard.trials = 3;
  shard.seed_base = 99;
  shard.max_rounds = 5000;
  const std::string a = runShard(shard).toJson();
  const std::string b = runShard(shard).toJson();
  EXPECT_EQ(a, b);
  const ShardResult parsed = ShardResult::parseJson(a);
  EXPECT_EQ(parsed.hash, shard.hash());
  ASSERT_EQ(parsed.metrics.at("rounds").size(), 3u);
  EXPECT_GT(parsed.metrics.at("rounds")[0], 0);
}

TEST(ShardExec, FaultyShardRecordsFaultMetrics) {
  ShardConfig shard;
  shard.protocol = "flood";
  // Dense G(n,p): the live subgraph stays connected through the crash
  // window (a star would disconnect the instant its center crashes).
  shard.adversary = "gnp";
  shard.p = 0.6;
  shard.n = 16;
  shard.trials = 2;
  // Flood with halt_round 0 never quiesces, so the run lasts max_rounds;
  // keep it short and restart crashed nodes fast so every live-subgraph
  // draw stays connected at these seeds.
  shard.max_rounds = 40;
  shard.fault.name = "crashy";
  shard.fault.config.crash_fraction = 0.25;
  shard.fault.config.crash_window = 8;
  shard.fault.config.restart = true;
  shard.fault.config.restart_downtime = 4;
  const ShardResult result = runShard(shard);
  EXPECT_TRUE(result.metrics.count("crashes"));
  EXPECT_TRUE(result.metrics.count("restarts"));
}

std::string reportOf(const std::string& dir) {
  CheckpointStore store(dir);
  return store.readFile("report.json").value();
}

TEST(Campaign, InProcessRunCompletesAndReportsFullCoverage) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_inproc");
  options.workers = 3;
  const CampaignOutcome outcome = runCampaign(spec, options);
  EXPECT_EQ(outcome.shards_total, 8u);
  EXPECT_EQ(outcome.completed_new, 8u);
  EXPECT_EQ(outcome.quarantined, 0u);
  EXPECT_TRUE(outcome.fullCoverage());
  EXPECT_FALSE(outcome.stopped_early);
  const obs::Json report =
      obs::Json::parse(reportOf(options.checkpoint_dir));
  EXPECT_EQ(report.at("counters").at("campaign/trials").number(), 16);
  EXPECT_EQ(report.at("gauges").at("campaign/coverage").number(), 1);
  // 8 shards x 2 trials of samples, merged in expansion order.
  EXPECT_EQ(
      report.at("series").at("trial/rounds").items().size(), 16u);
}

TEST(Campaign, InterruptedThenResumedReportIsByteIdentical) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions uninterrupted;
  uninterrupted.checkpoint_dir = freshDir("campaign_full");
  uninterrupted.workers = 2;
  ASSERT_TRUE(runCampaign(spec, uninterrupted).fullCoverage());

  // "Interrupt" deterministically: stop after 3 committed shards (the CI
  // smoke test does the same with a real SIGKILL).
  CampaignOptions partial;
  partial.checkpoint_dir = freshDir("campaign_partial");
  partial.workers = 1;
  partial.shard_limit = 3;
  const CampaignOutcome first = runCampaign(spec, partial);
  EXPECT_TRUE(first.stopped_early);
  EXPECT_EQ(first.completed_new, 3u);

  CampaignOptions resume;
  resume.checkpoint_dir = partial.checkpoint_dir;
  resume.workers = 2;  // different worker count on purpose
  const CampaignOutcome second = runCampaign(spec, resume);
  EXPECT_EQ(second.completed_prior, 3u);
  EXPECT_EQ(second.completed_new, 5u);
  EXPECT_TRUE(second.fullCoverage());
  EXPECT_EQ(reportOf(resume.checkpoint_dir),
            reportOf(uninterrupted.checkpoint_dir));
}

TEST(Campaign, RefusesForeignCheckpointDirectory) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_foreign");
  options.shard_limit = 1;
  runCampaign(spec, options);
  CampaignSpec other = spec;
  other.nodes = {16};  // different grid -> different shard identity
  EXPECT_THROW(runCampaign(other, options), util::CheckError);
}

TEST(Campaign, InProcessSabotageQuarantinesAndDegrades) {
  CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  spec.protocols = {"flood"};
  spec.adversaries = {"static_path"};
  spec.retry.max_attempts = 2;
  spec.retry.backoff_ms = 1;
  spec.retry.backoff_max_ms = 2;
  ShardFault bad;
  bad.name = "saboteur";
  bad.sabotage = "crash";
  spec.faults = {ShardFault{}, bad};
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_sabotage");
  const CampaignOutcome outcome = runCampaign(spec, options);
  EXPECT_EQ(outcome.shards_total, 4u);  // 2 faults x 2 seed blocks
  EXPECT_EQ(outcome.completed_new, 2u);
  EXPECT_EQ(outcome.quarantined, 2u);
  EXPECT_EQ(outcome.failed_attempts, 4u);  // 2 shards x 2 attempts
  EXPECT_FALSE(outcome.fullCoverage());
  EXPECT_FALSE(outcome.stopped_early);  // degraded, not aborted

  // Quarantined shards are skipped on resume...
  const CampaignOutcome again = runCampaign(spec, options);
  EXPECT_EQ(again.completed_prior, 2u);
  EXPECT_EQ(again.quarantined, 2u);
  EXPECT_EQ(again.failed_attempts, 0u);

  // ...unless retry is requested explicitly.
  options.retry_quarantined = true;
  const CampaignOutcome retried = runCampaign(spec, options);
  EXPECT_EQ(retried.failed_attempts, 4u);
  EXPECT_EQ(retried.quarantined, 2u);
}

std::string workerCmd() { return std::string(DYNET_TOOLS_DIR) + "/dynet_cli"; }

TEST(Campaign, SubprocessModeMatchesInProcessByteForByte) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions inproc;
  inproc.checkpoint_dir = freshDir("campaign_mode_a");
  inproc.workers = 2;
  ASSERT_TRUE(runCampaign(spec, inproc).fullCoverage());

  CampaignOptions subproc;
  subproc.checkpoint_dir = freshDir("campaign_mode_b");
  subproc.workers = 2;
  subproc.subprocess = true;
  subproc.worker_cmd = workerCmd();
  const CampaignOutcome outcome = runCampaign(spec, subproc);
  EXPECT_TRUE(outcome.fullCoverage()) << "failed attempts: "
                                      << outcome.failed_attempts;
  EXPECT_EQ(reportOf(inproc.checkpoint_dir),
            reportOf(subproc.checkpoint_dir));
}

TEST(Campaign, CrashingWorkerIsQuarantinedCampaignCompletes) {
  CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  spec.protocols = {"flood"};
  spec.adversaries = {"static_path"};
  spec.retry.max_attempts = 2;
  spec.retry.backoff_ms = 1;
  spec.retry.backoff_max_ms = 2;
  spec.retry.timeout_ms = 30'000;
  ShardFault crash;
  crash.name = "crash";
  crash.sabotage = "crash";
  spec.faults = {ShardFault{}, crash};
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_crash");
  options.subprocess = true;
  options.worker_cmd = workerCmd();
  const CampaignOutcome outcome = runCampaign(spec, options);
  EXPECT_EQ(outcome.completed_new, 2u);
  EXPECT_EQ(outcome.quarantined, 2u);
  EXPECT_EQ(outcome.failed_attempts, 4u);
}

TEST(Campaign, HangingWorkerIsKilledOnTimeout) {
  CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  spec.protocols = {"flood"};
  spec.adversaries = {"static_path"};
  spec.seed_count = 1;
  spec.seeds_per_shard = 1;
  spec.retry.max_attempts = 2;
  spec.retry.backoff_ms = 1;
  spec.retry.backoff_max_ms = 2;
  spec.retry.timeout_ms = 200;  // the hang must die fast
  ShardFault hang;
  hang.name = "hang";
  hang.sabotage = "hang";
  spec.faults = {hang};
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_hang");
  options.subprocess = true;
  options.worker_cmd = workerCmd();
  const CampaignOutcome outcome = runCampaign(spec, options);
  EXPECT_EQ(outcome.completed_new, 0u);
  EXPECT_EQ(outcome.quarantined, 1u);
  EXPECT_EQ(outcome.failed_attempts, 2u);
}

TEST(Campaign, FlakyWorkerSucceedsOnRetry) {
  CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  spec.protocols = {"flood"};
  spec.adversaries = {"static_path"};
  spec.seed_count = 1;
  spec.seeds_per_shard = 1;
  spec.retry.max_attempts = 3;
  spec.retry.backoff_ms = 1;
  spec.retry.backoff_max_ms = 2;
  spec.retry.timeout_ms = 30'000;
  const std::string marker = ::testing::TempDir() + "campaign_flaky_marker";
  fs::remove(marker);
  ShardFault flaky;
  flaky.name = "flaky";
  flaky.sabotage = "crash_once";
  flaky.sabotage_marker = marker;
  spec.faults = {flaky};
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_flaky");
  options.subprocess = true;
  options.worker_cmd = workerCmd();
  const CampaignOutcome outcome = runCampaign(spec, options);
  EXPECT_EQ(outcome.completed_new, 1u);
  EXPECT_EQ(outcome.quarantined, 0u);
  EXPECT_EQ(outcome.failed_attempts, 1u);  // exactly one strike, then done
  EXPECT_TRUE(fs::exists(marker));
  fs::remove(marker);
}

// ---------------------------------------------------------------- telemetry

std::vector<obs::Json> readEvents(const std::string& dir) {
  std::ifstream in(dir + "/events.jsonl");
  EXPECT_TRUE(in.good()) << "no events.jsonl in " << dir;
  std::vector<obs::Json> events;
  std::string line;
  while (std::getline(in, line)) {
    events.push_back(obs::Json::parse(line));
  }
  return events;
}

obs::Json readStatus(const std::string& dir) {
  std::ifstream in(dir + "/status.json");
  EXPECT_TRUE(in.good()) << "no status.json in " << dir;
  std::ostringstream buf;
  buf << in.rdbuf();
  return obs::Json::parse(buf.str());
}

TEST(Telemetry, EventStreamCoversInProcessCampaign) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions options;
  options.checkpoint_dir = freshDir("telemetry_events");
  options.workers = 3;
  ASSERT_TRUE(runCampaign(spec, options).fullCoverage());

  const std::vector<obs::Json> events = readEvents(options.checkpoint_dir);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().at("type").str(), "campaign_started");
  EXPECT_EQ(events.back().at("type").str(), "campaign_finished");
  EXPECT_TRUE(events.back().at("full_coverage").boolean());

  // Correlation: one campaign id on every record, seq contiguous from 0.
  const std::string campaign_id = events.front().at("campaign").str();
  EXPECT_EQ(campaign_id.size(), 16u);  // hex fnv1a of the spec identity
  std::set<std::string> committed;
  std::set<std::string> exec_started;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const obs::Json& e = events[i];
    EXPECT_EQ(e.at("campaign").str(), campaign_id);
    EXPECT_EQ(e.at("seq").number(), static_cast<double>(i));
    if (e.at("type").str() == "shard_committed") {
      EXPECT_TRUE(committed.insert(e.at("shard").str()).second)
          << "duplicate shard_committed for " << e.at("shard").str();
      EXPECT_EQ(e.at("attempt").number(), 1);
      EXPECT_EQ(e.at("trials").number(), 2);
    }
    if (e.at("type").str() == "shard_exec_started") {
      EXPECT_EQ(e.at("origin").str(), "inprocess");
      exec_started.insert(e.at("shard").str());
    }
  }
  std::set<std::string> expected;
  for (const ShardConfig& shard : spec.expandShards()) {
    expected.insert(shard.hash());
  }
  EXPECT_EQ(committed, expected);
  EXPECT_EQ(exec_started, expected);
}

TEST(Telemetry, StatusMatchesReportAcrossInterruptAndResume) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions partial;
  partial.checkpoint_dir = freshDir("telemetry_resume");
  partial.workers = 1;
  partial.shard_limit = 3;
  const CampaignOutcome first = runCampaign(spec, partial);
  ASSERT_TRUE(first.stopped_early);

  const obs::Json mid = readStatus(partial.checkpoint_dir);
  EXPECT_EQ(mid.at("state").str(), "stopped_early");
  EXPECT_EQ(mid.at("done").number(), 3);
  EXPECT_EQ(mid.at("shards_total").number(), 8);

  CampaignOptions resume;
  resume.checkpoint_dir = partial.checkpoint_dir;
  resume.workers = 2;
  const CampaignOutcome second = runCampaign(spec, resume);
  ASSERT_TRUE(second.fullCoverage());

  // Terminal snapshot agrees with the merged report.
  const obs::Json status = readStatus(resume.checkpoint_dir);
  const obs::Json report =
      obs::Json::parse(reportOf(resume.checkpoint_dir));
  EXPECT_EQ(status.at("state").str(), "finished");
  EXPECT_EQ(status.at("done").number(),
            report.at("counters").at("campaign/shards_completed").number());
  EXPECT_EQ(status.at("quarantined").number(),
            report.at("counters").at("campaign/shards_quarantined").number());
  EXPECT_EQ(status.at("trials_done").number(),
            report.at("counters").at("campaign/trials").number());
  EXPECT_EQ(status.at("running").number(), 0);
  EXPECT_EQ(status.at("pending").number(), 0);

  // One stream spans both runs: seq contiguous, no duplicate commits, and
  // the resume's campaign_started credits the prior shards.
  const std::vector<obs::Json> events = readEvents(resume.checkpoint_dir);
  std::set<std::string> committed;
  std::size_t starts = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at("seq").number(), static_cast<double>(i));
    if (events[i].at("type").str() == "shard_committed") {
      EXPECT_TRUE(committed.insert(events[i].at("shard").str()).second);
    }
    if (events[i].at("type").str() == "campaign_started") {
      ++starts;
      EXPECT_EQ(events[i].at("completed_prior").number(),
                starts == 1 ? 0 : 3);
    }
  }
  EXPECT_EQ(starts, 2u);
  EXPECT_EQ(committed.size(), 8u);
}

TEST(Telemetry, TornEventTailIsRepairedOnResume) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions partial;
  partial.checkpoint_dir = freshDir("telemetry_torn");
  partial.shard_limit = 2;
  ASSERT_TRUE(runCampaign(spec, partial).stopped_early);
  {
    // Simulate a SIGKILL mid-record: a torn final line without newline.
    std::ofstream out(partial.checkpoint_dir + "/events.jsonl",
                      std::ios::app);
    out << "{\"dynet_event\":1,\"seq\":99999,\"typ";
  }
  CampaignOptions resume;
  resume.checkpoint_dir = partial.checkpoint_dir;
  ASSERT_TRUE(runCampaign(spec, resume).fullCoverage());
  const std::vector<obs::Json> events = readEvents(resume.checkpoint_dir);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at("seq").number(), static_cast<double>(i));
  }
}

TEST(Telemetry, SubprocessWorkerEventsPropagateWithSlotContext) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions options;
  options.checkpoint_dir = freshDir("telemetry_subproc");
  options.workers = 2;
  options.subprocess = true;
  options.worker_cmd = workerCmd();
  ASSERT_TRUE(runCampaign(spec, options).fullCoverage());

  std::size_t spawned = 0;
  std::set<std::string> exec_finished;
  for (const obs::Json& e : readEvents(options.checkpoint_dir)) {
    const std::string type = e.at("type").str();
    if (type == "worker_spawned") {
      ++spawned;
      EXPECT_GT(e.at("pid").number(), 0);
      EXPECT_GE(e.at("slot").number(), 0);
    }
    if (type == "shard_exec_finished") {
      EXPECT_EQ(e.at("origin").str(), "worker");
      EXPECT_GE(e.at("slot").number(), 0);
      EXPECT_GE(e.at("exec_ms").number(), 0);
      EXPECT_EQ(e.at("trials").number(), 2);
      EXPECT_GE(e.at("attempt").number(), 1);
      exec_finished.insert(e.at("shard").str());
    }
  }
  EXPECT_GE(spawned, 1u);
  EXPECT_EQ(exec_finished.size(), 8u);
}

TEST(Telemetry, FlakyShardAttemptHistorySurvivesInStatus) {
  CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  spec.protocols = {"flood"};
  spec.adversaries = {"static_path"};
  spec.seed_count = 1;
  spec.seeds_per_shard = 1;
  spec.retry.max_attempts = 3;
  spec.retry.backoff_ms = 1;
  spec.retry.backoff_max_ms = 2;
  const std::string marker =
      ::testing::TempDir() + "telemetry_flaky_marker";
  fs::remove(marker);
  ShardFault flaky;
  flaky.name = "flaky";
  flaky.sabotage = "crash_once";
  flaky.sabotage_marker = marker;
  spec.faults = {flaky};
  CampaignOptions options;
  options.checkpoint_dir = freshDir("telemetry_flaky");
  options.subprocess = true;
  options.worker_cmd = workerCmd();
  const CampaignOutcome outcome = runCampaign(spec, options);
  EXPECT_EQ(outcome.completed_new, 1u);
  fs::remove(marker);

  const std::string hash = spec.expandShards()[0].hash();
  bool saw_failed = false;
  bool saw_committed_retry = false;
  for (const obs::Json& e : readEvents(options.checkpoint_dir)) {
    if (e.at("type").str() == "attempt_failed") {
      saw_failed = true;
      EXPECT_EQ(e.at("shard").str(), hash);
      EXPECT_EQ(e.at("attempt").number(), 1);
      EXPECT_TRUE(e.has("backoff_ms"));
    }
    if (e.at("type").str() == "shard_committed") {
      saw_committed_retry = true;
      EXPECT_EQ(e.at("attempt").number(), 2);
    }
  }
  EXPECT_TRUE(saw_failed);
  EXPECT_TRUE(saw_committed_retry);

  // The flaky shard stays visible in the snapshot's attention map.
  const obs::Json status = readStatus(options.checkpoint_dir);
  const obs::Json& attention = status.at("attention");
  ASSERT_TRUE(attention.has(hash));
  EXPECT_EQ(attention.at(hash).at("state").str(), "done");
  EXPECT_EQ(attention.at(hash).at("attempts").number(), 2);
}

TEST(Telemetry, OffLeavesNoArtifactsAndIdenticalReport) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions with;
  with.checkpoint_dir = freshDir("telemetry_on");
  ASSERT_TRUE(runCampaign(spec, with).fullCoverage());

  CampaignOptions without;
  without.checkpoint_dir = freshDir("telemetry_off");
  without.telemetry = false;
  ASSERT_TRUE(runCampaign(spec, without).fullCoverage());

  EXPECT_FALSE(fs::exists(without.checkpoint_dir + "/events.jsonl"));
  EXPECT_FALSE(fs::exists(without.checkpoint_dir + "/status.json"));
  EXPECT_FALSE(
      fs::exists(without.checkpoint_dir + "/scheduler_profile.json"));
  EXPECT_EQ(reportOf(with.checkpoint_dir),
            reportOf(without.checkpoint_dir));
}

TEST(Telemetry, SchedulerProfileIsValidMetricsJson) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions options;
  options.checkpoint_dir = freshDir("telemetry_profile");
  options.workers = 2;
  ASSERT_TRUE(runCampaign(spec, options).fullCoverage());

  std::ifstream in(options.checkpoint_dir + "/scheduler_profile.json");
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const obs::Json profile = obs::Json::parse(buf.str());
  EXPECT_TRUE(profile.has("dynet_metrics"));
  const obs::Json& counters = profile.at("counters");
  EXPECT_EQ(counters.at("campaign//execute/calls").number(), 8);
  EXPECT_EQ(counters.at("campaign//commit/calls").number(), 8);
  EXPECT_EQ(counters.at("campaign//queue_wait/calls").number(), 8);
  EXPECT_EQ(counters.at("campaign//run/calls").number(), 1);
  EXPECT_TRUE(profile.at("histograms").has("campaign//execute/us"));
  // In-process execution runs under the supervisor's prof scope, so the
  // engine's own DYNET_PROF timers land beside the stage samples.
  EXPECT_TRUE(counters.has("prof/engine/run/calls"));
}

TEST(Worker, EmitEventsInterleavesEventLinesWithResults) {
  ShardConfig shard;
  shard.protocol = "flood";
  shard.adversary = "static_ring";
  shard.n = 8;
  shard.trials = 2;
  shard.max_rounds = 1000;
  std::istringstream in(shard.canonicalJson() + "\n");
  std::ostringstream out;
  EXPECT_EQ(workerMain(in, out, /*emit_events=*/true), 0);
  std::istringstream lines(out.str());
  std::string line;
  std::vector<std::string> kinds;
  while (std::getline(lines, line)) {
    if (line.rfind("{\"dynet_event\"", 0) == 0) {
      kinds.push_back(obs::Json::parse(line).at("type").str());
      EXPECT_EQ(obs::Json::parse(line).at("shard").str(), shard.hash());
    } else {
      kinds.push_back("result");
      EXPECT_EQ(ShardResult::parseJson(line).hash, shard.hash());
    }
  }
  EXPECT_EQ(kinds,
            (std::vector<std::string>{"shard_exec_started",
                                      "shard_exec_finished", "result"}));
}

TEST(Worker, RunsShardsFromStreamUntilEof) {
  ShardConfig shard;
  shard.protocol = "flood";
  shard.adversary = "static_ring";
  shard.n = 8;
  shard.max_rounds = 1000;
  std::istringstream in(shard.canonicalJson() + "\n\n" +
                        shard.canonicalJson() + "\n");
  std::ostringstream out;
  EXPECT_EQ(workerMain(in, out), 0);
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    const ShardResult result = ShardResult::parseJson(line);
    EXPECT_EQ(result.hash, shard.hash());
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(Worker, MalformedConfigLineThrows) {
  std::istringstream in("{\"protocol\":\"flood\"");
  std::ostringstream out;
  EXPECT_THROW(workerMain(in, out), util::CheckError);
}

}  // namespace
}  // namespace dynet::campaign
