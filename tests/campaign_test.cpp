// Campaign-layer coverage: spec parsing and shard expansion, content
// addressing, the crash-safe checkpoint store, retry/backoff policy math,
// and full campaign runs in both execution modes.
//
// The supervision ladder is exercised with REAL subprocess workers (the
// dynet_cli binary from the build tree, via DYNET_TOOLS_DIR) and the
// sabotage hooks: a "crash" shard burns all attempts and is quarantined
// while the campaign completes; a "crash_once" shard fails, backs off,
// retries, and succeeds — the flaky-worker story end to end.  The
// byte-identity pins (in-process == subprocess, interrupted+resumed ==
// uninterrupted) are the determinism contract of docs/CAMPAIGNS.md.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/scheduler.h"
#include "campaign/shard_exec.h"
#include "campaign/spec.h"
#include "campaign/store.h"
#include "campaign/worker.h"
#include "obs/json.h"
#include "util/check.h"

#ifndef DYNET_TOOLS_DIR
#error "DYNET_TOOLS_DIR must point at the build tree's tools directory"
#endif

namespace dynet::campaign {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  fs::remove_all(path);
  return path;
}

std::string smallSpecText() {
  return R"({
    "name": "t",
    "protocols": ["flood", "leader_known_d"],
    "adversaries": ["static_path", "random_tree"],
    "nodes": [8],
    "seeds": {"base": 7, "count": 4, "per_shard": 2},
    "max_rounds": 5000
  })";
}

TEST(CampaignSpec, HashIsFnv1aOfCanonicalJson) {
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);  // reference vector
  EXPECT_EQ(hashHex(0), "0000000000000000");
  EXPECT_EQ(hashHex(0xdeadbeefULL), "00000000deadbeef");
  ShardConfig shard;
  EXPECT_EQ(shard.hash(), hashHex(fnv1a64(shard.canonicalJson())));
}

TEST(CampaignSpec, CanonicalJsonRoundTripsThroughParser) {
  // The worker re-derives the hash from the parsed config; any field that
  // does not survive the round trip (e.g. a 64-bit seed squeezed through a
  // double) would break supervisor/worker agreement.
  ShardConfig shard;
  shard.protocol = "leader_unknown_d";
  shard.adversary = "gnp";
  shard.n = 32;
  shard.trials = 3;
  shard.seed_base = 0xdeadbeefcafef00dULL;  // needs > 53 bits
  shard.p = 0.125;
  shard.fault.name = "burst";
  shard.fault.config.crash_fraction = 0.25;
  shard.fault.config.restart = true;
  const ShardConfig parsed =
      parseShardConfig(obs::Json::parse(shard.canonicalJson()));
  EXPECT_EQ(parsed.seed_base, shard.seed_base);
  EXPECT_EQ(parsed.canonicalJson(), shard.canonicalJson());
  EXPECT_EQ(parsed.hash(), shard.hash());
}

TEST(CampaignSpec, ParseRejectsGarbage) {
  EXPECT_THROW(CampaignSpec::parse("{"), util::CheckError);
  EXPECT_THROW(CampaignSpec::parse(R"({"protocols": ["flood"]})"),
               util::CheckError);  // missing adversaries/nodes/seeds
  EXPECT_THROW(CampaignSpec::parse(R"({
    "protocols": ["flood"], "adversaries": ["static_path"],
    "nodes": [8], "seeds": {"count": 1}, "typo_key": 1})"),
               util::CheckError);
  EXPECT_THROW(CampaignSpec::parse(R"({
    "protocols": ["no_such_protocol"], "adversaries": ["static_path"],
    "nodes": [8], "seeds": {"count": 1}})"),
               util::CheckError);
  EXPECT_THROW(CampaignSpec::parse(R"({
    "protocols": ["flood"], "adversaries": ["static_path"],
    "nodes": [8], "seeds": {"count": 0}})"),
               util::CheckError);
  // Unknown sabotage modes must die at parse time, not inside a worker.
  EXPECT_THROW(CampaignSpec::parse(R"({
    "protocols": ["flood"], "adversaries": ["static_path"], "nodes": [8],
    "seeds": {"count": 1}, "faults": [{"name": "x", "sabotage": "maim"}]})"),
               util::CheckError);
}

TEST(CampaignSpec, ExpandShardsCoversTheGridDeterministically) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  const std::vector<ShardConfig> shards = spec.expandShards();
  // 2 protocols x 2 adversaries x 1 n x 1 fault x 2 seed blocks.
  ASSERT_EQ(shards.size(), 8u);
  for (const ShardConfig& shard : shards) {
    EXPECT_EQ(shard.trials, 2);
    EXPECT_EQ(shard.max_rounds, 5000);
  }
  // Blocks of the same cell get distinct derived base seeds.
  EXPECT_NE(shards[0].seed_base, shards[1].seed_base);
  EXPECT_NE(shards[0].hash(), shards[1].hash());
  // Expansion is deterministic (the merge-order guarantee).
  const std::vector<ShardConfig> again =
      CampaignSpec::parse(smallSpecText()).expandShards();
  ASSERT_EQ(again.size(), shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i) {
    EXPECT_EQ(again[i].canonicalJson(), shards[i].canonicalJson());
  }
}

TEST(CampaignSpec, LastSeedBlockTakesTheRemainder) {
  CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  spec.seed_count = 5;
  spec.seeds_per_shard = 2;
  spec.protocols = {"flood"};
  spec.adversaries = {"static_path"};
  const std::vector<ShardConfig> shards = spec.expandShards();
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].trials, 2);
  EXPECT_EQ(shards[1].trials, 2);
  EXPECT_EQ(shards[2].trials, 1);
}

TEST(RetryPolicy, BackoffDoublesAndCaps) {
  RetryPolicy retry;
  retry.backoff_ms = 100;
  retry.backoff_max_ms = 450;
  EXPECT_EQ(retry.backoffDelayMs(1), 100);
  EXPECT_EQ(retry.backoffDelayMs(2), 200);
  EXPECT_EQ(retry.backoffDelayMs(3), 400);
  EXPECT_EQ(retry.backoffDelayMs(4), 450);  // capped
  EXPECT_EQ(retry.backoffDelayMs(10), 450);
  EXPECT_THROW(retry.backoffDelayMs(0), util::CheckError);
}

TEST(CheckpointStore, CommitLoadQuarantineRoundTrip) {
  CheckpointStore store(freshDir("campaign_store"));
  EXPECT_FALSE(store.hasResult("aa"));
  store.commitResult("aa", "{\"x\":1}");
  EXPECT_TRUE(store.hasResult("aa"));
  EXPECT_EQ(store.loadResult("aa").value(), "{\"x\":1}\n");
  EXPECT_FALSE(store.loadResult("bb").has_value());
  // Commits stage through tmp/ and rename into place; nothing may linger.
  EXPECT_TRUE(fs::is_empty(fs::path(store.dir()) / "tmp"));

  EXPECT_FALSE(store.isQuarantined("cc"));
  store.quarantine("cc", "died: \"segv\"\nrepeatedly", 3);
  EXPECT_TRUE(store.isQuarantined("cc"));
  // The marker must be parseable JSON despite quotes/newlines in the reason.
  const obs::Json marker =
      obs::Json::parse(store.readFile("quarantine/cc.json").value());
  EXPECT_EQ(marker.at("hash").str(), "cc");
  EXPECT_EQ(marker.at("attempts").number(), 3);
  store.clearQuarantine("cc");
  EXPECT_FALSE(store.isQuarantined("cc"));
}

TEST(ShardExec, ResultJsonRoundTrips) {
  ShardResult result;
  result.hash = "00ff";
  result.trials = 2;
  result.metrics["rounds"] = {7, 9.5};
  result.metrics["all_done"] = {1, 1};
  const ShardResult parsed = ShardResult::parseJson(result.toJson());
  EXPECT_EQ(parsed.hash, result.hash);
  EXPECT_EQ(parsed.trials, result.trials);
  EXPECT_EQ(parsed.metrics, result.metrics);
  EXPECT_THROW(ShardResult::parseJson("{\"not_a_shard\":1}"),
               util::CheckError);
  EXPECT_THROW(ShardResult::parseJson("{\"dynet_shard\":1,\"trials\""),
               util::CheckError);
}

TEST(ShardExec, RunShardIsDeterministic) {
  ShardConfig shard;
  shard.protocol = "leader_known_d";
  shard.adversary = "random_tree";
  shard.n = 12;
  shard.trials = 3;
  shard.seed_base = 99;
  shard.max_rounds = 5000;
  const std::string a = runShard(shard).toJson();
  const std::string b = runShard(shard).toJson();
  EXPECT_EQ(a, b);
  const ShardResult parsed = ShardResult::parseJson(a);
  EXPECT_EQ(parsed.hash, shard.hash());
  ASSERT_EQ(parsed.metrics.at("rounds").size(), 3u);
  EXPECT_GT(parsed.metrics.at("rounds")[0], 0);
}

TEST(ShardExec, FaultyShardRecordsFaultMetrics) {
  ShardConfig shard;
  shard.protocol = "flood";
  // Dense G(n,p): the live subgraph stays connected through the crash
  // window (a star would disconnect the instant its center crashes).
  shard.adversary = "gnp";
  shard.p = 0.6;
  shard.n = 16;
  shard.trials = 2;
  // Flood with halt_round 0 never quiesces, so the run lasts max_rounds;
  // keep it short and restart crashed nodes fast so every live-subgraph
  // draw stays connected at these seeds.
  shard.max_rounds = 40;
  shard.fault.name = "crashy";
  shard.fault.config.crash_fraction = 0.25;
  shard.fault.config.crash_window = 8;
  shard.fault.config.restart = true;
  shard.fault.config.restart_downtime = 4;
  const ShardResult result = runShard(shard);
  EXPECT_TRUE(result.metrics.count("crashes"));
  EXPECT_TRUE(result.metrics.count("restarts"));
}

std::string reportOf(const std::string& dir) {
  CheckpointStore store(dir);
  return store.readFile("report.json").value();
}

TEST(Campaign, InProcessRunCompletesAndReportsFullCoverage) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_inproc");
  options.workers = 3;
  const CampaignOutcome outcome = runCampaign(spec, options);
  EXPECT_EQ(outcome.shards_total, 8u);
  EXPECT_EQ(outcome.completed_new, 8u);
  EXPECT_EQ(outcome.quarantined, 0u);
  EXPECT_TRUE(outcome.fullCoverage());
  EXPECT_FALSE(outcome.stopped_early);
  const obs::Json report =
      obs::Json::parse(reportOf(options.checkpoint_dir));
  EXPECT_EQ(report.at("counters").at("campaign/trials").number(), 16);
  EXPECT_EQ(report.at("gauges").at("campaign/coverage").number(), 1);
  // 8 shards x 2 trials of samples, merged in expansion order.
  EXPECT_EQ(
      report.at("series").at("trial/rounds").items().size(), 16u);
}

TEST(Campaign, InterruptedThenResumedReportIsByteIdentical) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions uninterrupted;
  uninterrupted.checkpoint_dir = freshDir("campaign_full");
  uninterrupted.workers = 2;
  ASSERT_TRUE(runCampaign(spec, uninterrupted).fullCoverage());

  // "Interrupt" deterministically: stop after 3 committed shards (the CI
  // smoke test does the same with a real SIGKILL).
  CampaignOptions partial;
  partial.checkpoint_dir = freshDir("campaign_partial");
  partial.workers = 1;
  partial.shard_limit = 3;
  const CampaignOutcome first = runCampaign(spec, partial);
  EXPECT_TRUE(first.stopped_early);
  EXPECT_EQ(first.completed_new, 3u);

  CampaignOptions resume;
  resume.checkpoint_dir = partial.checkpoint_dir;
  resume.workers = 2;  // different worker count on purpose
  const CampaignOutcome second = runCampaign(spec, resume);
  EXPECT_EQ(second.completed_prior, 3u);
  EXPECT_EQ(second.completed_new, 5u);
  EXPECT_TRUE(second.fullCoverage());
  EXPECT_EQ(reportOf(resume.checkpoint_dir),
            reportOf(uninterrupted.checkpoint_dir));
}

TEST(Campaign, RefusesForeignCheckpointDirectory) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_foreign");
  options.shard_limit = 1;
  runCampaign(spec, options);
  CampaignSpec other = spec;
  other.nodes = {16};  // different grid -> different shard identity
  EXPECT_THROW(runCampaign(other, options), util::CheckError);
}

TEST(Campaign, InProcessSabotageQuarantinesAndDegrades) {
  CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  spec.protocols = {"flood"};
  spec.adversaries = {"static_path"};
  spec.retry.max_attempts = 2;
  spec.retry.backoff_ms = 1;
  spec.retry.backoff_max_ms = 2;
  ShardFault bad;
  bad.name = "saboteur";
  bad.sabotage = "crash";
  spec.faults = {ShardFault{}, bad};
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_sabotage");
  const CampaignOutcome outcome = runCampaign(spec, options);
  EXPECT_EQ(outcome.shards_total, 4u);  // 2 faults x 2 seed blocks
  EXPECT_EQ(outcome.completed_new, 2u);
  EXPECT_EQ(outcome.quarantined, 2u);
  EXPECT_EQ(outcome.failed_attempts, 4u);  // 2 shards x 2 attempts
  EXPECT_FALSE(outcome.fullCoverage());
  EXPECT_FALSE(outcome.stopped_early);  // degraded, not aborted

  // Quarantined shards are skipped on resume...
  const CampaignOutcome again = runCampaign(spec, options);
  EXPECT_EQ(again.completed_prior, 2u);
  EXPECT_EQ(again.quarantined, 2u);
  EXPECT_EQ(again.failed_attempts, 0u);

  // ...unless retry is requested explicitly.
  options.retry_quarantined = true;
  const CampaignOutcome retried = runCampaign(spec, options);
  EXPECT_EQ(retried.failed_attempts, 4u);
  EXPECT_EQ(retried.quarantined, 2u);
}

std::string workerCmd() { return std::string(DYNET_TOOLS_DIR) + "/dynet_cli"; }

TEST(Campaign, SubprocessModeMatchesInProcessByteForByte) {
  const CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  CampaignOptions inproc;
  inproc.checkpoint_dir = freshDir("campaign_mode_a");
  inproc.workers = 2;
  ASSERT_TRUE(runCampaign(spec, inproc).fullCoverage());

  CampaignOptions subproc;
  subproc.checkpoint_dir = freshDir("campaign_mode_b");
  subproc.workers = 2;
  subproc.subprocess = true;
  subproc.worker_cmd = workerCmd();
  const CampaignOutcome outcome = runCampaign(spec, subproc);
  EXPECT_TRUE(outcome.fullCoverage()) << "failed attempts: "
                                      << outcome.failed_attempts;
  EXPECT_EQ(reportOf(inproc.checkpoint_dir),
            reportOf(subproc.checkpoint_dir));
}

TEST(Campaign, CrashingWorkerIsQuarantinedCampaignCompletes) {
  CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  spec.protocols = {"flood"};
  spec.adversaries = {"static_path"};
  spec.retry.max_attempts = 2;
  spec.retry.backoff_ms = 1;
  spec.retry.backoff_max_ms = 2;
  spec.retry.timeout_ms = 30'000;
  ShardFault crash;
  crash.name = "crash";
  crash.sabotage = "crash";
  spec.faults = {ShardFault{}, crash};
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_crash");
  options.subprocess = true;
  options.worker_cmd = workerCmd();
  const CampaignOutcome outcome = runCampaign(spec, options);
  EXPECT_EQ(outcome.completed_new, 2u);
  EXPECT_EQ(outcome.quarantined, 2u);
  EXPECT_EQ(outcome.failed_attempts, 4u);
}

TEST(Campaign, HangingWorkerIsKilledOnTimeout) {
  CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  spec.protocols = {"flood"};
  spec.adversaries = {"static_path"};
  spec.seed_count = 1;
  spec.seeds_per_shard = 1;
  spec.retry.max_attempts = 2;
  spec.retry.backoff_ms = 1;
  spec.retry.backoff_max_ms = 2;
  spec.retry.timeout_ms = 200;  // the hang must die fast
  ShardFault hang;
  hang.name = "hang";
  hang.sabotage = "hang";
  spec.faults = {hang};
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_hang");
  options.subprocess = true;
  options.worker_cmd = workerCmd();
  const CampaignOutcome outcome = runCampaign(spec, options);
  EXPECT_EQ(outcome.completed_new, 0u);
  EXPECT_EQ(outcome.quarantined, 1u);
  EXPECT_EQ(outcome.failed_attempts, 2u);
}

TEST(Campaign, FlakyWorkerSucceedsOnRetry) {
  CampaignSpec spec = CampaignSpec::parse(smallSpecText());
  spec.protocols = {"flood"};
  spec.adversaries = {"static_path"};
  spec.seed_count = 1;
  spec.seeds_per_shard = 1;
  spec.retry.max_attempts = 3;
  spec.retry.backoff_ms = 1;
  spec.retry.backoff_max_ms = 2;
  spec.retry.timeout_ms = 30'000;
  const std::string marker = ::testing::TempDir() + "campaign_flaky_marker";
  fs::remove(marker);
  ShardFault flaky;
  flaky.name = "flaky";
  flaky.sabotage = "crash_once";
  flaky.sabotage_marker = marker;
  spec.faults = {flaky};
  CampaignOptions options;
  options.checkpoint_dir = freshDir("campaign_flaky");
  options.subprocess = true;
  options.worker_cmd = workerCmd();
  const CampaignOutcome outcome = runCampaign(spec, options);
  EXPECT_EQ(outcome.completed_new, 1u);
  EXPECT_EQ(outcome.quarantined, 0u);
  EXPECT_EQ(outcome.failed_attempts, 1u);  // exactly one strike, then done
  EXPECT_TRUE(fs::exists(marker));
  fs::remove(marker);
}

TEST(Worker, RunsShardsFromStreamUntilEof) {
  ShardConfig shard;
  shard.protocol = "flood";
  shard.adversary = "static_ring";
  shard.n = 8;
  shard.max_rounds = 1000;
  std::istringstream in(shard.canonicalJson() + "\n\n" +
                        shard.canonicalJson() + "\n");
  std::ostringstream out;
  EXPECT_EQ(workerMain(in, out), 0);
  std::istringstream lines(out.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    const ShardResult result = ShardResult::parseJson(line);
    EXPECT_EQ(result.hash, shard.hash());
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(Worker, MalformedConfigLineThrows) {
  std::istringstream in("{\"protocol\":\"flood\"");
  std::ostringstream out;
  EXPECT_THROW(workerMain(in, out), util::CheckError);
}

}  // namespace
}  // namespace dynet::campaign
