// Leader election with UNKNOWN diameter (the paper's §7 protocol).
//
//   $ ./leader_election_demo [--nodes 64] [--adversary random_tree]
//                            [--estimate-skew 1.1] [--c 0.25] [--seed 3]
//
// The protocol never learns D; it only holds an estimate N' with
// |N'-N|/N <= 1/3 - c.  The demo prints the phase schedule as it runs and
// reports rounds, realized flooding rounds, and the elected leader.
#include <iostream>

#include "adversary/dynamic_adversaries.h"
#include "adversary/static_adversaries.h"
#include "net/diameter.h"
#include "protocols/leader_unknown_d.h"
#include "protocols/max_flood.h"
#include "sim/engine.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace dynet;
  util::Cli cli(argc, argv);
  const auto n = static_cast<sim::NodeId>(cli.integer("nodes", 64));
  const std::string adv_name = cli.str("adversary", "random_tree");
  const double skew = cli.real("estimate-skew", 1.1);
  const double c = cli.real("c", 0.25);
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 3));
  cli.rejectUnknown();

  proto::LeaderConfig config;
  config.n_estimate = skew * n;
  config.c = c;
  config.k = 64;

  std::cout << "unknown-diameter leader election (paper §7 / Theorem 8)\n"
            << "N = " << n << ", N' = " << config.n_estimate << " (|N'-N|/N = "
            << std::abs(config.n_estimate - n) / n << ", promise allows "
            << (1.0 / 3.0 - c) << "), adversary = " << adv_name << "\n\n";

  proto::LeaderElectFactory factory(config, util::hashCombine(seed, 99));
  std::vector<std::unique_ptr<sim::Process>> processes;
  for (sim::NodeId v = 0; v < n; ++v) {
    processes.push_back(factory.create(v, n));
  }
  std::unique_ptr<sim::Adversary> adversary;
  if (adv_name == "random_tree") {
    adversary = std::make_unique<adv::RandomTreeAdversary>(n, seed);
  } else if (adv_name == "rotating_star") {
    adversary = std::make_unique<adv::RotatingStarAdversary>(n);
  } else if (adv_name == "static_path") {
    adversary = std::make_unique<adv::StaticAdversary>(net::makePath(n));
  } else if (adv_name == "shuffle_path") {
    adversary = std::make_unique<adv::ShufflePathAdversary>(n, seed);
  } else {
    std::cerr << "unknown adversary '" << adv_name << "'\n";
    return 2;
  }

  sim::EngineConfig engine_config;
  engine_config.max_rounds = 30'000'000;
  engine_config.record_topologies = true;
  sim::Engine engine(std::move(processes), std::move(adversary), engine_config,
                     seed);

  const proto::LeaderSchedule schedule(config);
  int last_phase = -1;
  while (!engine.allDone() && engine.step()) {
    const auto pos = schedule.locate(engine.currentRound());
    if (pos.phase != last_phase) {
      last_phase = pos.phase;
      std::cout << "phase " << pos.phase << " (diameter guess D' = "
                << (1 << pos.phase) << ") starts at round "
                << engine.currentRound() << "\n";
    }
  }
  const auto& result = engine.result();
  if (!result.all_done) {
    std::cout << "did not terminate within the round budget\n";
    return 1;
  }

  const std::uint64_t leader = engine.process(0).output();
  bool agreement = true;
  for (sim::NodeId v = 0; v < n; ++v) {
    agreement = agreement && engine.process(v).output() == leader;
  }
  const int diameter =
      net::dynamicDiameter(engine.topologies(),
                           std::min<int>(16, result.all_done_round - 1));
  std::cout << "\nelected leader: node " << (leader - 1) << " (key " << leader
            << ")\nagreement across all nodes: " << (agreement ? "yes" : "NO")
            << "\nterminated after " << result.all_done_round << " rounds";
  if (diameter > 0) {
    std::cout << " = " << result.all_done_round / static_cast<double>(diameter)
              << " flooding rounds at realized D = " << diameter;
  }
  std::cout << "\n(the pessimistic D := N approach would spend "
            << proto::knownDRounds(n, n) << " rounds regardless of D)\n";
  return agreement ? 0 : 1;
}
