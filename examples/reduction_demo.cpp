// The two-party reduction, narrated (Theorem 6).
//
//   $ ./reduction_demo [--q 61] [--n 2] [--disj 0|1] [--seed 5]
//
// Builds the Γ+Λ composition for a random DISJOINTNESSCP instance, runs
// Alice's and Bob's simulations of a CFLOOD oracle in lockstep against the
// ground-truth execution, and prints what each side could and could not
// see: spoiled-node counts per round, forwarded special-node traffic, the
// bit totals, and the final claim.
#include <iostream>

#include "cc/disjointness_cp.h"
#include "lowerbound/composition.h"
#include "lowerbound/reduction.h"
#include "protocols/cflood.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace dynet;
  util::Cli cli(argc, argv);
  const int q = static_cast<int>(cli.integer("q", 61));
  const int groups = static_cast<int>(cli.integer("n", 2));
  const int disj = static_cast<int>(cli.integer("disj", 0));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 5));
  cli.rejectUnknown();

  util::Rng rng(seed);
  const cc::Instance inst = cc::randomInstance(groups, q, rng, disj);
  const lb::CFloodNetwork network(inst);

  std::cout << "Theorem 6 reduction demo\n"
            << "instance: " << cc::describe(inst) << "\n"
            << "composed network: " << network.numNodes() << " nodes ("
            << network.gamma().numNodes() << " in type-Γ, "
            << network.lambda().numNodes() << " in type-Λ), "
            << network.bridges().size() << " bridging edges, horizon "
            << network.horizon() << " rounds\n\n";

  // How much of the network can each party simulate?
  for (const lb::Party party : {lb::Party::kAlice, lb::Party::kBob}) {
    const auto spoiled = network.spoiledFrom(party);
    int never = 0, always = 0;
    for (const auto s : spoiled) {
      never += s == lb::kNever ? 1 : 0;
      always += s == lb::kAlwaysSpoiled ? 1 : 0;
    }
    std::cout << (party == lb::Party::kAlice ? "Alice" : "Bob  ")
              << ": simulates " << network.numNodes() - always
              << " nodes at round 1; " << never
              << " stay non-spoiled through the whole horizon\n";
  }

  const proto::CFloodFactory oracle(network.source(), 0x2a, 8,
                                    proto::FloodMode::kRandomized,
                                    /*wait_rounds=*/12);
  const lb::ReductionResult result = lb::runCFloodReduction(inst, oracle, seed);

  util::Table table({"fact", "value"});
  table.row().cell("ground truth DISJ(x,y)").cell(result.disj_truth);
  table.row().cell("Alice's claim").cell(result.claimed_disj);
  table.row().cell("oracle terminated at round").cell(
      static_cast<std::int64_t>(result.monitor_done_round));
  table.row().cell("oracle output correct").cell(
      result.oracle_output_correct ? "yes" : "no");
  table.row().cell("token holders at horizon").cell(
      result.token_holders_at_horizon);
  table.row().cell("Alice -> Bob bits").cell(result.bits_alice_to_bob);
  table.row().cell("Bob -> Alice bits").cell(result.bits_bob_to_alice);
  table.row().cell("actions cross-validated").cell(result.actions_checked);
  table.row().cell("simulations exact vs reference").cell(
      result.simulation_consistent ? "yes" : "NO");
  std::cout << "\n" << table.toString();

  std::cout << "\nWhat to notice:\n"
            << "* both parties re-derived every non-spoiled node's behaviour\n"
            << "  from public coins + " << result.bits_alice_to_bob +
                   result.bits_bob_to_alice
            << " exchanged bits (vs "
            << static_cast<std::uint64_t>(result.num_nodes) *
                   static_cast<std::uint64_t>(result.horizon)
            << " node-rounds simulated);\n"
            << "* when DISJ=0 the fast oracle's confirmation is a lie — the\n"
            << "  |0,0 line cannot have been reached within the horizon;\n"
            << "* a correct oracle would have to run past the horizon, and\n"
            << "  that is exactly the Ω((N/log N)^{1/4}) cost of Theorem 6.\n";
  return result.simulation_consistent ? 0 : 1;
}
