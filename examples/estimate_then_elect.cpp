// The paper's end-to-end story: a good estimate of N makes leader election
// insensitive to unknown diameter.
//
//   $ ./estimate_then_elect [--nodes 96] [--seed 11]
//
// Phase 1 (bootstrap): while the diameter is known (e.g. the network was
// just deployed in a controlled setting), run the known-D estimate-N
// protocol (§1's trivial upper bound; O(log N)-flavoured flooding rounds).
// Phase 2 (operation): the topology now churns arbitrarily and D is
// unknown — run the §7 LEADERELECT with the phase-1 estimate as N'.
//
// The punchline the paper proves: phase 2 would cost Ω((N/log N)^{1/4})
// flooding rounds without the estimate (Theorem 7), and obtaining the
// estimate itself under unknown diameter is equally expensive — but one
// bootstrap window of known D removes the sensitivity forever (Theorem 8).
#include <iostream>

#include "adversary/churn_adversaries.h"
#include "adversary/dynamic_adversaries.h"
#include "protocols/counting.h"
#include "protocols/leader_unknown_d.h"
#include "protocols/majority.h"
#include "sim/engine.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace dynet;
  util::Cli cli(argc, argv);
  const auto n = static_cast<sim::NodeId>(cli.integer("nodes", 96));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 11));
  cli.rejectUnknown();

  // ---- Phase 1: estimate N with known D (stable bootstrap topology). ----
  const int bootstrap_diameter = 8;
  const int k = 192;
  const double c = 0.25;
  const sim::Round est_rounds = proto::countingRounds(k, bootstrap_diameter, n, 3);
  std::cout << "phase 1 — bootstrap: estimate N over a mildly-churning "
               "network with D <= " << bootstrap_diameter << "\n";
  proto::CountingFactory counting(k, est_rounds, seed);
  std::vector<std::unique_ptr<sim::Process>> ps;
  for (sim::NodeId v = 0; v < n; ++v) {
    ps.push_back(counting.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = est_rounds + 1;
  sim::Engine estimator(std::move(ps),
                        std::make_unique<adv::EdgeChurnAdversary>(n, 1, seed),
                        config, seed);
  estimator.run();
  // Each node ends with its own estimate; show node 0's.
  const auto* p0 =
      dynamic_cast<const proto::CountingProcess*>(&estimator.process(0));
  const double n_estimate = p0->estimate();
  std::cout << "  node 0's estimate N' = " << n_estimate << " (true N = " << n
            << ", error " << std::abs(n_estimate - n) / n << ", promise needs <= "
            << 1.0 / 3.0 - c << ")\n";
  if (!proto::validEstimate(n_estimate, n, c)) {
    std::cout << "  estimate outside the promise window — rerun with more "
                 "rounds/coordinates\n";
    return 1;
  }

  // ---- Phase 2: elect a leader with D unknown, topology reshuffled. ----
  std::cout << "\nphase 2 — operation: fresh random tree EVERY round, D "
               "unknown to the protocol\n";
  proto::LeaderConfig leader_config;
  leader_config.n_estimate = n_estimate;
  leader_config.c = c;
  leader_config.k = 64;
  proto::LeaderElectFactory leader(leader_config, util::hashCombine(seed, 2));
  ps.clear();
  for (sim::NodeId v = 0; v < n; ++v) {
    ps.push_back(leader.create(v, n));
  }
  sim::EngineConfig config2;
  config2.max_rounds = 20'000'000;
  sim::Engine election(std::move(ps),
                       std::make_unique<adv::RandomTreeAdversary>(n, seed + 9),
                       config2, seed + 9);
  const auto result = election.run();
  if (!result.all_done) {
    std::cout << "  election did not terminate\n";
    return 1;
  }
  const std::uint64_t leader_key = election.process(0).output();
  bool agreement = true;
  for (sim::NodeId v = 0; v < n; ++v) {
    agreement = agreement && election.process(v).output() == leader_key;
  }
  std::cout << "  elected node " << leader_key - 1 << " in "
            << result.all_done_round << " rounds; agreement: "
            << (agreement ? "yes" : "NO") << "\n";
  std::cout << "\nWithout the phase-1 estimate, ANY correct protocol here "
               "would need\nΩ((N/log N)^{1/4}) flooding rounds (Theorem 7); "
               "with it, the cost is\npolylog — the paper's headline.\n";
  return agreement ? 0 : 1;
}
