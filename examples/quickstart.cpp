// Quickstart: build a dynamic network, run a protocol, inspect the run.
//
//   $ ./quickstart [--nodes 32] [--seed 7]
//
// Walks the library's core loop end to end:
//   1. pick an adversary (here: a fresh random spanning tree every round),
//   2. instantiate a protocol per node via a ProcessFactory (deterministic
//      token flooding from node 0),
//   3. run the CONGEST round engine,
//   4. compute the realized dynamic diameter from the recorded topologies
//      and check the flooding-completes-within-D guarantee.
#include <iostream>

#include "adversary/dynamic_adversaries.h"
#include "net/diameter.h"
#include "protocols/cflood.h"
#include "protocols/flood.h"
#include "sim/engine.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace dynet;
  util::Cli cli(argc, argv);
  const auto n = static_cast<sim::NodeId>(cli.integer("nodes", 32));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 7));
  cli.rejectUnknown();

  std::cout << "dynet quickstart: flooding a token over a dynamic network of "
            << n << " nodes\n"
            << "(topology: a fresh random spanning tree every round)\n\n";

  // 1. Protocols: node 0 floods an 8-bit token; holders always send.
  proto::FloodFactory factory(/*source=*/0, /*token=*/0x5a, /*token_bits=*/8,
                              proto::FloodMode::kDeterministic,
                              /*halt_round=*/0);
  std::vector<std::unique_ptr<sim::Process>> processes;
  for (sim::NodeId v = 0; v < n; ++v) {
    processes.push_back(factory.create(v, n));
  }

  // 2. Adversary + engine, with topology recording switched on.
  sim::EngineConfig config;
  config.max_rounds = 4 * n;
  config.record_topologies = true;
  sim::Engine engine(std::move(processes),
                     std::make_unique<adv::RandomTreeAdversary>(n, seed),
                     config, seed);

  // 3. Step rounds until everyone holds the token.
  sim::Round completed = -1;
  while (completed < 0 && engine.step()) {
    if (proto::tokenHolderCount(engine) == n) {
      completed = engine.currentRound();
    }
  }
  std::cout << "token reached all " << n << " nodes after " << completed
            << " rounds\n";
  std::cout << "messages sent: " << engine.result().messages_sent << " ("
            << engine.result().bits_sent << " bits, budget "
            << engine.budgetBits() << " bits/message)\n";

  // 4. The realized dynamic diameter bounds the completion round.
  const int diameter = net::causalEccentricity(engine.topologies(), 0, 0);
  std::cout << "realized causal eccentricity of the source: " << diameter
            << " rounds\n";
  std::cout << (completed > 0 && completed <= diameter
                    ? "flooding completed within the causal eccentricity, as "
                      "the model guarantees.\n"
                    : "unexpected: flooding exceeded the causal bound!\n");
  return completed > 0 && completed <= diameter ? 0 : 1;
}
