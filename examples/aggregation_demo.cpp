// Aggregation on a churning dynamic network: MAX and estimate-N
// (HEAR-FROM-N-NODES) with a known diameter bound.
//
//   $ ./aggregation_demo [--nodes 96] [--diameter 8] [--k 128] [--seed 9]
//
// Every node holds a private value; the network is a fresh random spanning
// tree each round.  The demo runs (a) max-flood to find the maximum and
// (b) exponential-minima counting to estimate N, and reports accuracy.
#include <iostream>

#include "adversary/dynamic_adversaries.h"
#include "protocols/counting.h"
#include "protocols/max_flood.h"
#include "sim/engine.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace dynet;
  util::Cli cli(argc, argv);
  const auto n = static_cast<sim::NodeId>(cli.integer("nodes", 96));
  const int diameter = static_cast<int>(cli.integer("diameter", 8));
  const int k = static_cast<int>(cli.integer("k", 128));
  const auto seed = static_cast<std::uint64_t>(cli.integer("seed", 9));
  cli.rejectUnknown();

  std::cout << "aggregation over a churning network (" << n
            << " nodes, random tree each round, D bound " << diameter << ")\n\n";

  // --- MAX via max-flood ---
  std::vector<std::uint64_t> values;
  std::uint64_t true_max = 0;
  util::Rng rng(seed);
  for (sim::NodeId v = 0; v < n; ++v) {
    values.push_back(rng.below(100000));
    true_max = std::max(true_max, values.back());
  }
  const sim::Round max_rounds = proto::knownDRounds(diameter, n);
  proto::MaxFloodFactory max_factory(values, /*value_bits=*/17, max_rounds);
  std::vector<std::unique_ptr<sim::Process>> processes;
  for (sim::NodeId v = 0; v < n; ++v) {
    processes.push_back(max_factory.create(v, n));
  }
  sim::EngineConfig config;
  config.max_rounds = max_rounds + 1;
  sim::Engine max_engine(std::move(processes),
                         std::make_unique<adv::RandomTreeAdversary>(n, seed),
                         config, seed);
  max_engine.run();
  int exact = 0;
  for (sim::NodeId v = 0; v < n; ++v) {
    const auto* p =
        dynamic_cast<const proto::MaxFloodProcess*>(&max_engine.process(v));
    exact += (p != nullptr && values[static_cast<std::size_t>(p->bestKey() - 1)] ==
                                  p->bestValue() &&
              p->bestKey() == static_cast<std::uint64_t>(n))
                 ? 1
                 : 0;
  }
  std::cout << "MAX: true max = " << true_max << "; " << exact << "/" << n
            << " nodes learned the global winner in " << max_rounds
            << " rounds (" << max_rounds / diameter << " flooding rounds)\n";

  // --- estimate N via exponential minima ---
  const sim::Round count_rounds = proto::countingRounds(k, diameter, n, 2);
  proto::CountingFactory count_factory(k, count_rounds, seed);
  processes.clear();
  for (sim::NodeId v = 0; v < n; ++v) {
    processes.push_back(count_factory.create(v, n));
  }
  config.max_rounds = count_rounds + 1;
  sim::Engine count_engine(std::move(processes),
                           std::make_unique<adv::RandomTreeAdversary>(n, seed + 1),
                           config, seed + 1);
  count_engine.run();
  double worst_rel_err = 0;
  for (sim::NodeId v = 0; v < n; ++v) {
    const auto* p =
        dynamic_cast<const proto::CountingProcess*>(&count_engine.process(v));
    if (p != nullptr) {
      worst_rel_err =
          std::max(worst_rel_err, std::abs(p->estimate() - n) / n);
    }
  }
  std::cout << "estimate-N: k = " << k << ", " << count_rounds
            << " rounds; worst node's relative error = " << worst_rel_err
            << "\n";
  std::cout << "\n(an estimate with error below 1/3 - c is exactly what the\n"
            << "§7 protocol needs to elect a leader without knowing D — see\n"
            << "leader_election_demo)\n";
  return worst_rel_err < 1.0 / 3.0 ? 0 : 1;
}
